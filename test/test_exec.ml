(* The fault-isolation layer: Runner (fork pool, deadlines, retry),
   Checker (parallel `shelley check` determinism), and the hardened
   Nusmv_driver classification. *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector_source =
  valve_source
  ^ {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return []
            case ["clean"]:
                self.a.clean()
                return []
|}

let broken_source = "class Broken:\n    def m(self:\n        return []\n"

(* A throwaway directory of corpus files; returns their paths. *)
let corpus_dir =
  lazy
    (let dir = Filename.temp_file "shelley_exec" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     let write name contents =
       let path = Filename.concat dir name in
       let oc = open_out_bin path in
       output_string oc contents;
       close_out oc;
       path
     in
     [
       write "ok.py" valve_source;
       write "bad.py" bad_sector_source;
       write "broken.py" broken_source;
     ])

(* --- Runner ---------------------------------------------------------------- *)

let test_runner_inline_matches_forked () =
  let tasks = [ 1; 2; 3; 4; 5; 6; 7 ] in
  let f n = n * n in
  let unwrap = function
    | Runner.Done r -> r
    | Runner.Timed_out _ | Runner.Crashed _ -> Alcotest.fail "task failed"
  in
  let inline = List.map unwrap (Runner.map ~jobs:1 ~f tasks) in
  let forked = List.map unwrap (Runner.map ~jobs:4 ~deadline:30.0 ~f tasks) in
  Alcotest.(check (list int)) "forked order = input order" inline forked;
  Alcotest.(check (list int)) "values" [ 1; 4; 9; 16; 25; 36; 49 ] inline

let test_runner_timeout () =
  match Runner.map ~jobs:2 ~deadline:0.3 ~f:(fun _ -> Unix.sleep 30) [ () ] with
  | [ Runner.Timed_out { seconds; attempts } ] ->
    Alcotest.(check (float 0.001)) "configured deadline" 0.3 seconds;
    Alcotest.(check int) "single attempt without retry" 1 attempts
  | _ -> Alcotest.fail "expected Timed_out"

let test_runner_timeout_retry_attempts () =
  match
    Runner.map ~jobs:2 ~deadline:0.2
      ~retry:(fun _ -> Unix.sleep 30)
      ~f:(fun _ -> Unix.sleep 30)
      [ () ]
  with
  | [ Runner.Timed_out { attempts; _ } ] ->
    Alcotest.(check int) "both attempts burned" 2 attempts
  | _ -> Alcotest.fail "expected Timed_out"

let suicide _ = Unix.kill (Unix.getpid ()) Sys.sigkill

let test_runner_crash () =
  match Runner.map ~jobs:2 ~deadline:10.0 ~f:suicide [ () ] with
  | [ Runner.Crashed { reason; attempts } ] ->
    Alcotest.(check string) "signal named" "killed by SIGKILL" reason;
    Alcotest.(check int) "single attempt" 1 attempts
  | _ -> Alcotest.fail "expected Crashed"

let test_runner_retry_recovers () =
  match
    Runner.map ~jobs:2 ~deadline:10.0
      ~retry:(fun n -> n + 1)
      ~f:(fun n -> suicide n; n)
      [ 41 ]
  with
  | [ Runner.Done 42 ] -> ()
  | _ -> Alcotest.fail "expected the retry's Done 42"

let test_runner_success_not_retried () =
  (* Regression: with a retry function present, a successful first attempt
     must be stored as-is, not re-queued — the retry here returns a sentinel
     that would overwrite the real result if it ever ran. *)
  match
    Runner.map ~jobs:2 ~retry:(fun _ -> -1) ~f:(fun n -> n * n) [ 2; 3; 4 ]
  with
  | [ Runner.Done 4; Runner.Done 9; Runner.Done 16 ] -> ()
  | outcomes ->
    let show = function
      | Runner.Done r -> string_of_int r
      | Runner.Timed_out _ -> "timeout"
      | Runner.Crashed { reason; _ } -> "crashed: " ^ reason
    in
    Alcotest.failf "first attempts were not kept: [%s]"
      (String.concat "; " (List.map show outcomes))

let test_runner_success_not_retried_with_deadline () =
  (* Same contract on the deadline path Checker.check_files actually uses
     (jobs + deadline + retry all present at once). *)
  match
    Runner.map ~jobs:2 ~deadline:10.0 ~retry:(fun _ -> -1) ~f:(fun n -> n + 1) [ 1 ]
  with
  | [ Runner.Done 2 ] -> ()
  | _ -> Alcotest.fail "successful first attempt was retried"

let test_runner_exception_contained () =
  match Runner.map ~jobs:2 ~deadline:10.0 ~f:(fun _ -> failwith "boom") [ () ] with
  | [ Runner.Crashed { reason; _ } ] ->
    Alcotest.(check bool) "exception text preserved" true
      (Testutil.contains reason "boom")
  | _ -> Alcotest.fail "expected Crashed"

let test_runner_isolation () =
  (* One hang and one crash in the middle of the batch: every other task
     still completes, and outcomes stay in input order. *)
  let f = function
    | 2 -> Unix.sleep 30; 0
    | 3 -> suicide 3; 0
    | n -> n * 10
  in
  match Runner.map ~jobs:4 ~deadline:0.5 ~f [ 1; 2; 3; 4 ] with
  | [ Runner.Done 10; Runner.Timed_out _; Runner.Crashed _; Runner.Done 40 ] -> ()
  | outcomes ->
    Alcotest.failf "unexpected outcomes (%d)" (List.length outcomes)

let test_signal_name () =
  Alcotest.(check string) "kill" "SIGKILL" (Runner.signal_name Sys.sigkill);
  Alcotest.(check string) "segv" "SIGSEGV" (Runner.signal_name Sys.sigsegv);
  Alcotest.(check string) "unknown" "signal 12345" (Runner.signal_name 12345)

(* --- Supervisor (persistent prefork pool) ---------------------------------- *)

(* A small, fast pool configuration for tests: tight heartbeats and grace
   so wedge/restart paths resolve in tenths of a second, not seconds. *)
let test_config ?jobs ?batch_size ?deadline ?max_tasks_per_worker ?max_restarts () =
  Supervisor.config ?jobs ?batch_size ?deadline ?max_tasks_per_worker ?max_restarts
    ~backoff_base:0.005 ~backoff_cap:0.05 ~heartbeat_interval:0.4 ~grace:0.1 ()

let with_pool ?label cfg f body =
  let pool = Supervisor.create ?label cfg f in
  Fun.protect ~finally:(fun () -> Supervisor.shutdown pool) (fun () -> body pool)

let test_supervisor_inline_matches_pooled () =
  let tasks = List.init 23 (fun i -> i) in
  let f n = n * n in
  let unwrap = function
    | Supervisor.Done r -> r
    | Supervisor.Timed_out _ | Supervisor.Crashed _ -> Alcotest.fail "task failed"
  in
  let expected = List.map f tasks in
  with_pool (test_config ~jobs:4 ~batch_size:3 ()) f @@ fun pool ->
  let pooled = List.map unwrap (Supervisor.map pool tasks) in
  Alcotest.(check (list int)) "pooled order = input order" expected pooled;
  let st = Supervisor.stats pool in
  Alcotest.(check bool) "batching amortizes dispatches" true (st.Supervisor.batches < 23);
  Alcotest.(check bool) "all tasks ran in workers" true (st.Supervisor.tasks = 23)

let test_supervisor_pool_persists_across_maps () =
  let f n = n + 1 in
  with_pool (test_config ~jobs:2 ()) f @@ fun pool ->
  let run () =
    match Supervisor.map pool [ 1; 2; 3; 4 ] with
    | [ Supervisor.Done 2; Done 3; Done 4; Done 5 ] -> ()
    | _ -> Alcotest.fail "wrong results"
  in
  run ();
  let spawned_once = (Supervisor.stats pool).Supervisor.spawns in
  run ();
  run ();
  Alcotest.(check int) "workers reused, not respawned"
    spawned_once
    (Supervisor.stats pool).Supervisor.spawns;
  Alcotest.(check bool) "workers spawned at all" true (spawned_once > 0)

let test_supervisor_crash_mid_batch_isolated () =
  (* Task 2 kills its worker mid-batch; the remaining tasks of that batch
     are re-dispatched and still complete — only task 2 is charged. *)
  let f = function
    | 2 -> suicide 2; 0
    | n -> n * 10
  in
  with_pool (test_config ~jobs:1 ~batch_size:8 ()) f @@ fun pool ->
  match Supervisor.map pool [ 1; 2; 3; 4 ] with
  | [ Done 10; Crashed { reason; attempts = 1 }; Done 30; Done 40 ] ->
    Alcotest.(check string) "signal named" "killed by SIGKILL" reason;
    let st = Supervisor.stats pool in
    Alcotest.(check bool) "crash restarted the worker" true (st.Supervisor.restarts >= 1);
    Alcotest.(check bool) "restart entered backoff" true
      (st.Supervisor.backoff_waits >= 1)
  | outcomes -> Alcotest.failf "unexpected outcomes (%d)" (List.length outcomes)

let test_supervisor_deadline_mid_batch () =
  let f = function
    | 2 -> Unix.sleep 30; 0
    | n -> n * 10
  in
  with_pool (test_config ~jobs:1 ~batch_size:8 ~deadline:0.3 ()) f @@ fun pool ->
  match Supervisor.map pool [ 1; 2; 3 ] with
  | [ Done 10; Timed_out { seconds; attempts = 1 }; Done 30 ] ->
    Alcotest.(check (float 0.001)) "configured deadline" 0.3 seconds;
    Alcotest.(check bool) "deadline kill counted" true
      ((Supervisor.stats pool).Supervisor.kills >= 1)
  | outcomes -> Alcotest.failf "unexpected outcomes (%d)" (List.length outcomes)

let test_supervisor_success_not_retried () =
  with_pool (test_config ~jobs:2 ()) (fun n -> n * n) @@ fun pool ->
  match Supervisor.map ~retry:(fun _ -> -1) pool [ 2; 3; 4 ] with
  | [ Done 4; Done 9; Done 16 ] -> ()
  | _ -> Alcotest.fail "successful first attempts were not kept"

let test_supervisor_retry_recovers_and_attempts () =
  (* Attempt 1 (positive task) crashes; the retry transform flips the sign
     and succeeds. The settled record must say two attempts were spent, so
     the checker knows not to cache the reduced-budget result. *)
  let f n = if n > 0 then (suicide n; 0) else n * 10 in
  with_pool (test_config ~jobs:2 ()) f @@ fun pool ->
  match Supervisor.run ~retry:(fun n -> -n) pool [ 7 ] with
  | [ { Supervisor.outcome = Done (-70); attempts = 2; _ } ] -> ()
  | [ { Supervisor.outcome = Done r; attempts; _ } ] ->
    Alcotest.failf "got Done %d after %d attempts" r attempts
  | _ -> Alcotest.fail "expected the retry's Done"

let test_supervisor_poisoned_after_two_attempts () =
  let f n = if n = 2 then (suicide n; 0) else n in
  with_pool (test_config ~jobs:2 ()) f @@ fun pool ->
  match Supervisor.run ~retry:(fun n -> n) pool [ 1; 2; 3 ] with
  | [
   { Supervisor.outcome = Done 1; _ };
   { Supervisor.outcome = Crashed { attempts = 2; _ }; attempts = 2; _ };
   { Supervisor.outcome = Done 3; _ };
  ] ->
    Alcotest.(check int) "poisoned task counted" 1
      (Supervisor.stats pool).Supervisor.poisoned
  | _ -> Alcotest.fail "expected exactly the poisoned task to fail"

let test_supervisor_recycles_workers () =
  with_pool
    (test_config ~jobs:1 ~batch_size:1 ~max_tasks_per_worker:2 ())
    (fun n -> n)
  @@ fun pool ->
  let tasks = List.init 10 (fun i -> i) in
  let ok =
    List.for_all2
      (fun n o -> o = Supervisor.Done n)
      tasks (Supervisor.map pool tasks)
  in
  Alcotest.(check bool) "all completed across recycles" true ok;
  let st = Supervisor.stats pool in
  Alcotest.(check bool)
    (Printf.sprintf "recycled every 2 tasks (got %d)" st.Supervisor.recycles)
    true
    (st.Supervisor.recycles >= 4);
  Alcotest.(check bool) "recycles respawn fresh workers" true (st.Supervisor.spawns >= 5)

let test_supervisor_closed_pool_degrades_inline () =
  let pool = Supervisor.create (test_config ~jobs:2 ()) (fun n -> n * 2) in
  Supervisor.shutdown pool;
  (match Supervisor.map pool [ 1; 2; 3 ] with
  | [ Done 2; Done 4; Done 6 ] -> ()
  | _ -> Alcotest.fail "closed pool must still complete inline");
  Alcotest.(check int) "ran in-process" 3 (Supervisor.stats pool).Supervisor.inline_tasks;
  Alcotest.(check int) "no workers" 0 (Supervisor.stats pool).Supervisor.live_workers

let test_supervisor_shutdown_leaves_no_orphans () =
  let f n = n in
  let pids =
    with_pool (test_config ~jobs:3 ()) f @@ fun pool ->
    ignore (Supervisor.map pool [ 1; 2; 3; 4; 5; 6 ]);
    let pids = Supervisor.worker_pids pool in
    Alcotest.(check bool) "workers were live" true (pids <> []);
    pids
  in
  (* After shutdown every worker is reaped: kill 0 probes must fail. *)
  List.iter
    (fun pid ->
      match Unix.kill pid 0 with
      | () -> Alcotest.failf "worker %d survived shutdown" pid
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()
      | exception _ -> ())
    pids

(* --- Checker determinism --------------------------------------------------- *)

let shuffle seed l =
  let st = Random.State.make [| seed |] in
  let tagged = List.map (fun x -> (Random.State.bits st, x)) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)

(* The contract behind `shelley check -j N`: per-file blocks and codes
   depend only on the file, and aggregation follows input order — so any
   jobs count and any input order produce the same per-path verdicts. *)
let test_checker_determinism =
  QCheck2.Test.make ~count:12 ~name:"check -j N / shuffled inputs deterministic"
    QCheck2.Gen.(pair (int_range 1 4) int)
    (fun (jobs, seed) ->
      let paths = Lazy.force corpus_dir in
      let baseline = Checker.check_files ~jobs:1 paths in
      let shuffled = shuffle seed paths in
      let got = Checker.check_files ~jobs shuffled in
      (* Outcomes arrive in input order... *)
      List.iter2
        (fun path (v : Checker.verdict) -> assert (String.equal path v.Checker.path))
        shuffled got;
      (* ...and each file's block and code are independent of order/jobs. *)
      List.for_all
        (fun (v : Checker.verdict) ->
          let b =
            List.find
              (fun (b : Checker.verdict) -> String.equal b.Checker.path v.Checker.path)
              baseline
          in
          String.equal b.Checker.output v.Checker.output && b.Checker.code = v.Checker.code)
        got)

let test_checker_codes () =
  let paths = Lazy.force corpus_dir in
  let verdicts = Checker.check_files ~jobs:2 paths in
  let code name =
    (List.find
       (fun (v : Checker.verdict) -> Filename.basename v.Checker.path = name)
       verdicts)
      .Checker.code
  in
  Alcotest.(check int) "ok.py verifies" 0 (code "ok.py");
  Alcotest.(check int) "bad.py fails verification" 1 (code "bad.py");
  Alcotest.(check int) "broken.py is a syntax error" 2 (code "broken.py");
  Alcotest.(check int) "aggregate = max" 2 (Checker.exit_code verdicts)

let test_checker_unreadable () =
  let v = Checker.check_file "definitely/not/a/file.py" in
  Alcotest.(check int) "code 2" 2 v.Checker.code;
  Alcotest.(check bool) "rendered" true
    (Testutil.contains v.Checker.output "cannot read file")

let test_checker_deadline_report () =
  (* The fault hook needs both the explicit arm switch and the env var (it
     only fires on matching paths, so scope both). The armed flag is
     inherited by the forked workers. *)
  Checker.fault_injection := true;
  Unix.putenv "SHELLEY_FAULT" "hang:ok.py";
  Fun.protect
    ~finally:(fun () ->
      Checker.fault_injection := false;
      Unix.putenv "SHELLEY_FAULT" "")
    (fun () ->
      let limits = Limits.make ~deadline:0.3 () in
      let verdicts = Checker.check_files ~jobs:2 ~limits (Lazy.force corpus_dir) in
      let hung =
        List.find
          (fun (v : Checker.verdict) -> Filename.basename v.Checker.path = "ok.py")
          verdicts
      in
      Alcotest.(check int) "deadline maps to 3" 3 hung.Checker.code;
      Alcotest.(check bool) "structured block" true
        (Testutil.contains hung.Checker.output "WALL-CLOCK DEADLINE EXCEEDED");
      (* The other files were unaffected. *)
      Alcotest.(check int) "bad.py still checked" 1
        (List.find
           (fun (v : Checker.verdict) -> Filename.basename v.Checker.path = "bad.py")
           verdicts)
          .Checker.code)

let test_checker_fault_hook_inert_unless_armed () =
  (* A stale SHELLEY_FAULT in the environment must be ignored when the
     in-process arm switch is off: ok.py verifies normally instead of
     hanging into its deadline. *)
  Unix.putenv "SHELLEY_FAULT" "hang:ok.py";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "SHELLEY_FAULT" "")
    (fun () ->
      let limits = Limits.make ~deadline:10.0 () in
      let verdicts = Checker.check_files ~jobs:2 ~limits (Lazy.force corpus_dir) in
      let ok =
        List.find
          (fun (v : Checker.verdict) -> Filename.basename v.Checker.path = "ok.py")
          verdicts
      in
      Alcotest.(check int) "ok.py verified, not hung" 0 ok.Checker.code)

(* --- Nusmv_driver classification ------------------------------------------- *)

let verdict_label = function
  | Nusmv_driver.Verified _ -> "verified"
  | Nusmv_driver.Counterexample _ -> "counterexample"
  | Nusmv_driver.Rejected_input _ -> "rejected"
  | Nusmv_driver.Tool_missing _ -> "missing"
  | Nusmv_driver.Tool_timeout _ -> "timeout"
  | Nusmv_driver.Tool_failed _ -> "failed"

let classify ?(status = Unix.WEXITED 0) ?(stdout = "") ?(stderr = "") () =
  verdict_label (Nusmv_driver.classify_output ~status ~stdout ~stderr)

let test_driver_classification () =
  Alcotest.(check string) "all true" "verified"
    (classify
       ~stdout:
         "-- specification ((F event = e_end) & x) -> y  is true\n\
          -- specification G z  is true\n"
       ());
  Alcotest.(check string) "one false" "counterexample"
    (classify
       ~stdout:
         "-- specification a is true\n\
          -- specification b is false\n\
          Trace Description: LTL Counterexample\n"
       ());
  Alcotest.(check string) "parser trouble" "rejected"
    (classify ~status:(Unix.WEXITED 1) ~stderr:"file.smv: syntax error at line 3" ());
  Alcotest.(check string) "plain failure" "failed"
    (classify ~status:(Unix.WEXITED 2) ~stderr:"out of memory" ());
  Alcotest.(check string) "NuSMV undefined identifier" "rejected"
    (classify ~status:(Unix.WEXITED 1)
       ~stderr:"file.smv:7:12: undefined identifier \"e_open\"" ());
  (* Not every "undefined" is NuSMV's: a dynamic-linker failure mentioning
     "undefined symbol" is a tool failure, not a rejected model. *)
  Alcotest.(check string) "linker undefined symbol" "failed"
    (classify ~status:(Unix.WEXITED 1)
       ~stderr:"NuSMV: symbol lookup error: libfoo.so: undefined symbol: f" ());
  Alcotest.(check string) "signal" "failed"
    (classify ~status:(Unix.WSIGNALED Sys.sigsegv) ());
  match Nusmv_driver.classify_output ~status:(Unix.WEXITED 0)
          ~stdout:"-- specification p is true\n-- specification q is true\n" ~stderr:""
  with
  | Nusmv_driver.Verified { specs } -> Alcotest.(check int) "spec count" 2 specs
  | _ -> Alcotest.fail "expected Verified"

let test_driver_missing_binary () =
  (match Nusmv_driver.find_binary ~binary:"shelley-no-such-checker" () with
  | Error [ "shelley-no-such-checker" ] -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Error with the searched name");
  let r = Nusmv_driver.run_text ~binary:"shelley-no-such-checker" "MODULE main\n" in
  (match r.Nusmv_driver.verdict with
  | Nusmv_driver.Tool_missing { searched } ->
    Alcotest.(check (list string)) "searched names" [ "shelley-no-such-checker" ] searched
  | v -> Alcotest.failf "expected Tool_missing, got %s" (verdict_label v));
  Alcotest.(check int) "classified nonzero exit" 3
    (Nusmv_driver.exit_code r.Nusmv_driver.verdict)

let test_driver_fake_binary () =
  (* A stub NuSMV exercises the real spawn/drain/kill path hermetically. *)
  let dir = Filename.temp_file "shelley_fakebin" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let script name body =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc ("#!/bin/sh\n" ^ body);
    close_out oc;
    Unix.chmod path 0o755;
    path
  in
  let truthy = script "nusmv-true" "echo '-- specification p  is true'\nexit 0\n" in
  let falsy = script "nusmv-false" "echo '-- specification p  is false'\nexit 0\n" in
  let sleepy = script "nusmv-sleep" "sleep 30\n" in
  (match (Nusmv_driver.run_text ~binary:truthy "MODULE main\n").Nusmv_driver.verdict with
  | Nusmv_driver.Verified { specs = 1 } -> ()
  | v -> Alcotest.failf "expected Verified, got %s" (verdict_label v));
  (match (Nusmv_driver.run_text ~binary:falsy "MODULE main\n").Nusmv_driver.verdict with
  | Nusmv_driver.Counterexample { failed = [ line ] } ->
    Alcotest.(check bool) "spec line kept" true (Testutil.contains line "is false")
  | v -> Alcotest.failf "expected Counterexample, got %s" (verdict_label v));
  match
    (Nusmv_driver.run_text ~binary:sleepy ~timeout:0.3 "MODULE main\n").Nusmv_driver.verdict
  with
  | Nusmv_driver.Tool_timeout { seconds } ->
    Alcotest.(check (float 0.001)) "deadline recorded" 0.3 seconds
  | v -> Alcotest.failf "expected Tool_timeout, got %s" (verdict_label v)

let () =
  Alcotest.run "exec"
    [
      ( "runner",
        [
          Alcotest.test_case "inline = forked, input order" `Quick
            test_runner_inline_matches_forked;
          Alcotest.test_case "deadline kills a hung worker" `Quick test_runner_timeout;
          Alcotest.test_case "retry attempts counted" `Quick
            test_runner_timeout_retry_attempts;
          Alcotest.test_case "crash classified" `Quick test_runner_crash;
          Alcotest.test_case "retry recovers" `Quick test_runner_retry_recovers;
          Alcotest.test_case "success not retried" `Quick test_runner_success_not_retried;
          Alcotest.test_case "success not retried (deadline path)" `Quick
            test_runner_success_not_retried_with_deadline;
          Alcotest.test_case "exception contained" `Quick test_runner_exception_contained;
          Alcotest.test_case "faults isolated per task" `Quick test_runner_isolation;
          Alcotest.test_case "signal names" `Quick test_signal_name;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "inline = pooled, input order, batching" `Quick
            test_supervisor_inline_matches_pooled;
          Alcotest.test_case "pool persists across maps" `Quick
            test_supervisor_pool_persists_across_maps;
          Alcotest.test_case "crash mid-batch isolated" `Quick
            test_supervisor_crash_mid_batch_isolated;
          Alcotest.test_case "deadline kill mid-batch" `Quick
            test_supervisor_deadline_mid_batch;
          Alcotest.test_case "success not retried" `Quick
            test_supervisor_success_not_retried;
          Alcotest.test_case "retry recovers, attempts recorded" `Quick
            test_supervisor_retry_recovers_and_attempts;
          Alcotest.test_case "poisoned after two attempts" `Quick
            test_supervisor_poisoned_after_two_attempts;
          Alcotest.test_case "recycling by task count" `Quick
            test_supervisor_recycles_workers;
          Alcotest.test_case "closed pool degrades inline" `Quick
            test_supervisor_closed_pool_degrades_inline;
          Alcotest.test_case "shutdown leaves no orphans" `Quick
            test_supervisor_shutdown_leaves_no_orphans;
        ] );
      ( "checker",
        [
          QCheck_alcotest.to_alcotest test_checker_determinism;
          Alcotest.test_case "per-file exit codes" `Quick test_checker_codes;
          Alcotest.test_case "unreadable path" `Quick test_checker_unreadable;
          Alcotest.test_case "deadline yields structured report" `Quick
            test_checker_deadline_report;
          Alcotest.test_case "fault hook inert unless armed" `Quick
            test_checker_fault_hook_inert_unless_armed;
        ] );
      ( "nusmv-driver",
        [
          Alcotest.test_case "output classification" `Quick test_driver_classification;
          Alcotest.test_case "missing binary" `Quick test_driver_missing_binary;
          Alcotest.test_case "stub binary end-to-end" `Quick test_driver_fake_binary;
        ] );
    ]
