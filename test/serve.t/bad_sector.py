# The paper's Listing 2.1 + 2.2: BadSector misuses its valves and violates
# its temporal claim. `shelley check samples/bad_sector.py` reproduces both
# error transcripts from the paper's Section 2.2.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]


@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []
