Serve mode: one long-lived daemon owns a persistent worker pool; clients
send newline-delimited JSON-RPC over a Unix socket. The contract is
byte-identity with the one-shot CLI — same stdout, same exit codes.

  $ shelley serve --socket d.sock -j 2 > serve.log 2>&1 &
  > SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done

check through the daemon replays one-shot `shelley check` exactly:

  $ shelley check valve.py bad_sector.py > oneshot.out 2>&1; echo "exit $?"
  exit 1
  $ shelley client --socket d.sock check valve.py bad_sector.py > served.out 2>&1; echo "exit $?"
  exit 1
  $ cmp oneshot.out served.out && echo identical
  identical

lint too:

  $ shelley lint valve.py bad_sector.py > lint_oneshot.out 2>&1; echo "exit $?"
  exit 0
  $ shelley client --socket d.sock lint valve.py bad_sector.py > lint_served.out 2>&1; echo "exit $?"
  exit 0
  $ cmp lint_oneshot.out lint_served.out && echo identical
  identical

status reports the daemon and its pool (3 requests so far, 2 live workers):

  $ shelley client --socket d.sock status | grep -o '"requests":[0-9]*'
  "requests":3
  $ shelley client --socket d.sock status | grep -o '"live_workers":[0-9]*'
  "live_workers":2

shutdown acknowledges, drains and exits 0, unlinking the socket:

  $ shelley client --socket d.sock shutdown
  {"ok":true}
  $ wait $SERVE_PID; echo "daemon exit $?"
  daemon exit 0
  $ [ -S d.sock ] || echo socket removed
  socket removed

A worker SIGKILL-ed mid-run charges only its unit: the crashed file gets a
structured WORKER CRASHED block, every other unit is byte-identical.

  $ SHELLEY_FAULT=crash:valve shelley serve --socket f.sock -j 2 --fault-injection > fault.log 2>&1 &
  > FAULT_PID=$!
  $ for i in $(seq 1 100); do [ -S f.sock ] && break; sleep 0.1; done
  $ shelley client --socket f.sock check valve.py bad_sector.py > crashed.out 2>&1; echo "exit $?"
  exit 3
  $ grep -c 'WORKER CRASHED' crashed.out
  1
  $ grep -c 'INVALID SUBSYSTEM USAGE' crashed.out
  1
  $ shelley client --socket f.sock shutdown > /dev/null && wait $FAULT_PID; echo "daemon exit $?"
  daemon exit 0

SIGTERM during a multi-file run drains gracefully: the in-flight request
finishes and its complete bytes reach the client, finished units' cache
entries are flushed, the daemon exits 0 and removes its socket.

  $ SHELLEY_FAULT=slow:valve shelley serve --socket s.sock -j 2 --cache .sc --fault-injection > slow.log 2>&1 &
  > SLOW_PID=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ shelley client --socket s.sock check valve.py bad_sector.py > drained.out 2>&1 &
  > CLIENT_PID=$!
  $ sleep 0.4; kill -TERM $SLOW_PID
  $ wait $CLIENT_PID; echo "client exit $?"
  client exit 1
  $ wait $SLOW_PID; echo "daemon exit $?"
  daemon exit 0
  $ cmp oneshot.out drained.out && echo identical
  identical
  $ [ -S s.sock ] || echo socket removed
  socket removed
  $ find .sc -name '*.entry' | wc -l | tr -d ' '
  2
