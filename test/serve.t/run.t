Serve mode: one long-lived daemon owns a persistent worker pool; clients
send newline-delimited JSON-RPC over a Unix socket. The contract is
byte-identity with the one-shot CLI — same stdout, same exit codes.

  $ shelley serve --socket d.sock -j 2 > serve.log 2>&1 &
  > SERVE_PID=$!
  $ for i in $(seq 1 100); do [ -S d.sock ] && break; sleep 0.1; done

check through the daemon replays one-shot `shelley check` exactly:

  $ shelley check valve.py bad_sector.py > oneshot.out 2>&1; echo "exit $?"
  exit 1
  $ shelley client --socket d.sock check valve.py bad_sector.py > served.out 2>&1; echo "exit $?"
  exit 1
  $ cmp oneshot.out served.out && echo identical
  identical

lint too:

  $ shelley lint valve.py bad_sector.py > lint_oneshot.out 2>&1; echo "exit $?"
  exit 0
  $ shelley client --socket d.sock lint valve.py bad_sector.py > lint_served.out 2>&1; echo "exit $?"
  exit 0
  $ cmp lint_oneshot.out lint_served.out && echo identical
  identical

status reports the daemon and its pool (3 requests so far, 2 live workers):

  $ shelley client --socket d.sock status | grep -o '"requests":[0-9]*'
  "requests":3
  $ shelley client --socket d.sock status | grep -o '"live_workers":[0-9]*'
  "live_workers":2

shutdown acknowledges, drains and exits 0, unlinking the socket:

  $ shelley client --socket d.sock shutdown
  {"ok":true}
  $ wait $SERVE_PID; echo "daemon exit $?"
  daemon exit 0
  $ [ -S d.sock ] || echo socket removed
  socket removed

A worker SIGKILL-ed mid-run charges only its unit: the crashed file gets a
structured WORKER CRASHED block, every other unit is byte-identical.

  $ SHELLEY_FAULT=crash:valve shelley serve --socket f.sock -j 2 --fault-injection > fault.log 2>&1 &
  > FAULT_PID=$!
  $ for i in $(seq 1 100); do [ -S f.sock ] && break; sleep 0.1; done
  $ shelley client --socket f.sock check valve.py bad_sector.py > crashed.out 2>&1; echo "exit $?"
  exit 3
  $ grep -c 'WORKER CRASHED' crashed.out
  1
  $ grep -c 'INVALID SUBSYSTEM USAGE' crashed.out
  1
  $ shelley client --socket f.sock shutdown > /dev/null && wait $FAULT_PID; echo "daemon exit $?"
  daemon exit 0

SIGTERM during a multi-file run drains gracefully: the in-flight request
finishes and its complete bytes reach the client, finished units' cache
entries are flushed, the daemon exits 0 and removes its socket.

  $ SHELLEY_FAULT=slow:valve shelley serve --socket s.sock -j 2 --cache .sc --fault-injection > slow.log 2>&1 &
  > SLOW_PID=$!
  $ for i in $(seq 1 100); do [ -S s.sock ] && break; sleep 0.1; done
  $ shelley client --socket s.sock check valve.py bad_sector.py > drained.out 2>&1 &
  > CLIENT_PID=$!
  $ sleep 0.4; kill -TERM $SLOW_PID
  $ wait $CLIENT_PID; echo "client exit $?"
  client exit 1
  $ wait $SLOW_PID; echo "daemon exit $?"
  daemon exit 0
  $ cmp oneshot.out drained.out && echo identical
  identical
  $ [ -S s.sock ] || echo socket removed
  socket removed
  $ find .sc -name '*.entry' | wc -l | tr -d ' '
  2

A second serve on a socket a live daemon owns refuses to steal it — the
incumbent keeps serving, the challenger exits 2.

  $ shelley serve --socket own.sock -j 1 > own.log 2>&1 &
  > OWN_PID=$!
  $ for i in $(seq 1 100); do [ -S own.sock ] && break; sleep 0.1; done
  $ shelley serve --socket own.sock -j 1 2> clobber.err; echo "exit $?"
  exit 2
  $ grep -c 'already running' clobber.err
  1
  $ shelley client --socket own.sock status | grep -o '"pid"' | head -1
  "pid"
  $ shelley client --socket own.sock shutdown > /dev/null && wait $OWN_PID; echo "daemon exit $?"
  daemon exit 0

A stale socket left by a SIGKILL-ed daemon is probed, found dead, and
reclaimed:

  $ shelley serve --socket stale.sock -j 1 > stale.log 2>&1 &
  > STALE_PID=$!
  $ for i in $(seq 1 100); do [ -S stale.sock ] && break; sleep 0.1; done
  $ kill -KILL $STALE_PID; wait $STALE_PID 2> /dev/null; echo "killed exit $?"
  killed exit 137
  $ [ -S stale.sock ] && echo socket left behind
  socket left behind
  $ shelley serve --socket stale.sock -j 1 > reclaimed.log 2>&1 &
  > RECLAIM_PID=$!
  $ for i in $(seq 1 100); do shelley client --socket stale.sock --retries 0 status > /dev/null 2>&1 && break; sleep 0.1; done
  $ shelley client --socket stale.sock status | grep -o '"requests"'
  "requests"
  $ shelley client --socket stale.sock shutdown > /dev/null && wait $RECLAIM_PID; echo "daemon exit $?"
  daemon exit 0

Overload: with one worker, a one-slot admission queue and a slow
verification pinning the worker, two simultaneous clients contend for the
single slot — exactly one is shed with a structured overloaded error
(exit 4, --retries 0 disables the client's own backoff so the shed is
observable), the other completes byte-identically to one-shot.

  $ SHELLEY_FAULT=slow:valve shelley serve --socket ov.sock -j 1 --max-queue 1 --fault-injection > ov.log 2>&1 &
  > OV_PID=$!
  $ for i in $(seq 1 100); do [ -S ov.sock ] && break; sleep 0.1; done
  $ shelley client --socket ov.sock check valve.py bad_sector.py > a.out 2>&1 &
  > A_PID=$!
  $ sleep 0.4
  $ shelley client --socket ov.sock --retries 0 check valve.py bad_sector.py > b.out 2>&1 &
  > B_PID=$!
  $ shelley client --socket ov.sock --retries 0 check valve.py bad_sector.py > c.out 2>&1 &
  > C_PID=$!
  $ wait $A_PID; echo "A exit $?"
  A exit 1
  $ wait $B_PID; B_EXIT=$?
  $ wait $C_PID; C_EXIT=$?
  $ echo "shed $(( (B_EXIT == 4) + (C_EXIT == 4) ))"
  shed 1
  $ grep -l 'overloaded' b.out c.out | wc -l | tr -d ' '
  1
  $ cmp oneshot.out a.out && echo identical
  identical
  $ shelley client --socket ov.sock status | grep -o '"shed":[0-9]*'
  "shed":1
  $ shelley client --socket ov.sock shutdown > /dev/null && wait $OV_PID; echo "daemon exit $?"
  daemon exit 0

Queued-deadline expiry: while the worker is pinned, a higher-priority
request claims the next dispatch slot, so a queued request with a 100 ms
deadline expires before it can run — answered exit 3, never dispatched.

  $ SHELLEY_FAULT=slow:valve shelley serve --socket exp.sock -j 1 --max-queue 8 --fault-injection > exp.log 2>&1 &
  > EXP_PID=$!
  $ for i in $(seq 1 100); do [ -S exp.sock ] && break; sleep 0.1; done
  $ shelley client --socket exp.sock check valve.py > ea.out 2>&1 &
  > EA_PID=$!
  $ sleep 0.4
  $ shelley client --socket exp.sock --priority 1 check valve.py > efill.out 2>&1 &
  > EFILL_PID=$!
  $ sleep 0.1
  $ shelley client --socket exp.sock --retries 0 --deadline-ms 100 check valve.py > eexp.out 2>&1; echo "expired exit $?"
  expired exit 3
  $ grep -c 'deadline expired' eexp.out
  1
  $ wait $EA_PID; echo "A exit $?"
  A exit 0
  $ wait $EFILL_PID; echo "filler exit $?"
  filler exit 0
  $ shelley client --socket exp.sock status | grep -o '"expired":[0-9]*'
  "expired":1
  $ shelley client --socket exp.sock shutdown > /dev/null && wait $EXP_PID; echo "daemon exit $?"
  daemon exit 0
