(* The observability layer: recorder semantics (disabled = inert, spans
   well-nested, fake clock deterministic), the Limits fuel ledger
   (snapshot/consumed), sink schemas (metrics JSON, Chrome trace), worker
   lanes, and the contract that matters most: enabling observability never
   changes a single byte of report output. *)

(* --- a minimal JSON reader, enough to validate our own sinks --------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Json_error of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
        | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
        | Some 'u' ->
          advance ();
          pos := !pos + 4;
          Buffer.add_char b '?';
          go ()
        | Some c -> advance (); Buffer.add_char b c; go ()
        | None -> fail "unterminated escape")
      | Some c ->
        advance ();
        Buffer.add_char b c;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> Alcotest.failf "missing key %S" key)
  | _ -> Alcotest.failf "not an object (looking for %S)" key

let as_str = function
  | Str s -> s
  | _ -> Alcotest.fail "expected a string"

let as_int = function
  | Num f -> int_of_float f
  | _ -> Alcotest.fail "expected a number"

let as_arr = function
  | Arr l -> l
  | _ -> Alcotest.fail "expected an array"

(* Every test leaves the global recorder disabled, whatever happens. *)
let with_obs ?fake_clock f =
  Obs.enable ?fake_clock ();
  Fun.protect ~finally:Obs.disable f

(* --- recorder semantics ---------------------------------------------------- *)

let test_disabled_inert () =
  Obs.disable ();
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Obs.count "nope" 1;
  let r = Obs.with_span "nope" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span is the identity" 42 r;
  let r, profile = Obs.in_unit ~name:"nope" (fun () -> "x") in
  Alcotest.(check string) "in_unit is the identity" "x" r;
  Alcotest.(check bool) "no profile" true (profile = None);
  Alcotest.(check int) "no units" 0 (List.length (Obs.units ()));
  Alcotest.(check int) "no counters" 0 (List.length (Obs.counters ()))

let test_counters_accumulate () =
  with_obs @@ fun () ->
  Obs.count "a" 2;
  Obs.count "b" 5;
  Obs.count "a" 3;
  Alcotest.(check (list (pair string int)))
    "summed and sorted"
    [ ("a", 5); ("b", 7 - 2) ]
    (Obs.counters ())

let test_span_nesting_and_exceptions () =
  with_obs ~fake_clock:true @@ fun () ->
  let _, profile =
    Obs.in_unit ~name:"u" (fun () ->
        Obs.with_span "outer" (fun () ->
            (try Obs.with_span "inner" (fun () -> failwith "boom")
             with Failure _ -> ());
            Obs.with_span "sibling" (fun () -> ())))
  in
  let p = Option.get profile in
  (* Well-nested: walk with a stack; every E closes the matching B. *)
  let stack = ref [] in
  List.iter
    (fun (ev : Obs.event) ->
      if ev.Obs.ev_begin then stack := ev.Obs.ev_name :: !stack
      else
        match !stack with
        | top :: rest when String.equal top ev.Obs.ev_name -> stack := rest
        | _ -> Alcotest.failf "E %S does not close the innermost B" ev.Obs.ev_name)
    p.Obs.events;
  Alcotest.(check (list string)) "stack drained" [] !stack;
  (* The exception-killed span still closed. *)
  let names = List.map (fun (ev : Obs.event) -> ev.Obs.ev_name) p.Obs.events in
  Alcotest.(check int) "inner appears as B and E" 2
    (List.length (List.filter (String.equal "inner") names))

let test_fake_clock_deterministic () =
  let run () =
    with_obs ~fake_clock:true @@ fun () ->
    let _, profile =
      Obs.in_unit ~name:"u" (fun () ->
          Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ()));
          Obs.count "k" 3)
    in
    Option.iter (Obs.add_unit ~lane:0) profile;
    let buf = Buffer.create 256 in
    Obs.render_stats (Format.formatter_of_buffer buf);
    Buffer.contents buf
  in
  let first = run () in
  let second = run () in
  Alcotest.(check string) "two runs render identically" first second;
  Alcotest.(check bool) "fake clock label" true
    (Testutil.contains first "clock: fake")

let test_unit_isolation () =
  (* Ticks and counters restart per unit, so a unit's profile is independent
     of what ran before it — the property that makes -j 1 and -j N agree. *)
  with_obs ~fake_clock:true @@ fun () ->
  let work () = Obs.with_span "w" (fun () -> Obs.count "c" 1) in
  let _, p1 = Obs.in_unit ~name:"first" work in
  Obs.count "parent-noise" 99;
  let _, p2 = Obs.in_unit ~name:"second" work in
  let p1 = Option.get p1 and p2 = Option.get p2 in
  Alcotest.(check (list (pair string int))) "same counters" p1.Obs.counters p2.Obs.counters;
  let times (p : Obs.profile) = List.map (fun (e : Obs.event) -> e.Obs.ev_ts_us) p.Obs.events in
  Alcotest.(check (list int)) "same timestamps" (times p1) (times p2)

(* --- Limits ledger --------------------------------------------------------- *)

let test_snapshot_empty_and_monotone () =
  let t = Limits.make () in
  Alcotest.(check (list (pair string int))) "fresh budget: empty" [] (Limits.snapshot t);
  let f = Limits.fuel ~within:t ~resource:"r" 100 in
  Alcotest.(check (list (pair string int)))
    "resource appears untouched" [ ("r", 100) ] (Limits.snapshot t);
  (* Remaining never increases, whatever we do. *)
  let prev = ref 100 in
  for _ = 1 to 10 do
    Limits.spend f;
    match Limits.snapshot t with
    | [ ("r", remaining) ] ->
      Alcotest.(check bool) "monotone non-increasing" true (remaining <= !prev);
      prev := remaining
    | _ -> Alcotest.fail "unexpected snapshot shape"
  done;
  Alcotest.(check int) "exact remaining" 90 !prev

let test_snapshot_multiple_constructions () =
  (* Two counters drawing on the same budget field under the same name:
     the ledger records the cumulative draw (and may go negative). *)
  let t = Limits.make () in
  let f1 = Limits.fuel ~within:t ~resource:"s" 5 in
  let f2 = Limits.fuel ~within:t ~resource:"s" 5 in
  for _ = 1 to 4 do
    Limits.spend f1;
    Limits.spend f2
  done;
  Alcotest.(check (list (pair string int)))
    "cumulative across counters" [ ("s", 5 - 8) ] (Limits.snapshot t)

let test_consumed_deltas () =
  let t = Limits.make () in
  let f = Limits.fuel ~within:t ~resource:"a" 100 in
  Limits.spend f;
  Limits.spend f;
  let before = Limits.snapshot t in
  Alcotest.(check (list (pair string int))) "nothing since before" []
    (Limits.consumed t ~before);
  Limits.spend f;
  let g = Limits.fuel ~within:t ~resource:"b" 50 in
  Limits.spend g;
  Limits.spend g;
  Alcotest.(check (list (pair string int)))
    "per-resource deltas (new resource counts from its limit)"
    [ ("a", 1); ("b", 2) ]
    (Limits.consumed t ~before)

let test_check_high_water () =
  let t = Limits.make () in
  Limits.check ~within:t ~resource:"size" ~limit:100 30;
  Limits.check ~within:t ~resource:"size" ~limit:100 70;
  Limits.check ~within:t ~resource:"size" ~limit:100 10;
  Alcotest.(check (list (pair string int)))
    "high-water mark, not a sum" [ ("size", 30) ] (Limits.snapshot t);
  Alcotest.(check bool) "over limit still raises" true
    (match Limits.check ~within:t ~resource:"size" ~limit:100 101 with
    | () -> false
    | exception Limits.Budget_exceeded _ -> true)

let test_reduced_fresh_ledger () =
  let t = Limits.make () in
  let f = Limits.fuel ~within:t ~resource:"r" 100 in
  Limits.spend f;
  let r = Limits.reduced t in
  Alcotest.(check (list (pair string int))) "retry budget starts clean" []
    (Limits.snapshot r);
  Alcotest.(check (list (pair string int)))
    "original untouched" [ ("r", 99) ] (Limits.snapshot t)

(* --- Runner lanes ---------------------------------------------------------- *)

let test_map_ex_inline_lane_zero () =
  let got = Runner.map_ex ~jobs:1 ~f:(fun n -> n) [ 1; 2; 3 ] in
  List.iter (fun (_, lane) -> Alcotest.(check int) "inline lane" 0 lane) got

let test_map_ex_lanes_bounded () =
  let got =
    Runner.map_ex ~jobs:2 ~deadline:30.0 ~f:(fun n -> n * n) [ 1; 2; 3; 4; 5 ]
  in
  Alcotest.(check int) "all settled" 5 (List.length got);
  List.iter
    (fun (outcome, lane) ->
      (match outcome with
      | Runner.Done _ -> ()
      | _ -> Alcotest.fail "expected Done");
      Alcotest.(check bool) "lane within pool" true (lane >= 0 && lane < 2))
    got;
  (* map is map_ex minus the lanes. *)
  let plain = Runner.map ~jobs:2 ~deadline:30.0 ~f:(fun n -> n * n) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "map = fst map_ex" true (plain = List.map fst got)

(* --- corpus for the end-to-end sink tests ---------------------------------- *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector_source =
  valve_source
  ^ {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return []
            case ["clean"]:
                self.a.clean()
                return []
|}

let corpus_dir =
  lazy
    (let dir = Filename.temp_file "shelley_obs" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     let write name contents =
       let path = Filename.concat dir name in
       let oc = open_out_bin path in
       output_string oc contents;
       close_out oc;
       path
     in
     [ write "ok.py" valve_source; write "bad.py" bad_sector_source ])

(* --- metrics JSON schema --------------------------------------------------- *)

let test_metrics_json_schema () =
  with_obs ~fake_clock:true @@ fun () ->
  let verdicts = Checker.check_files ~jobs:1 (Lazy.force corpus_dir) in
  Alcotest.(check int) "both units profiled" 2
    (List.length (List.filter (fun (v : Checker.verdict) -> v.Checker.profile <> None) verdicts));
  let j = parse_json (Obs.render_metrics_json ()) in
  Alcotest.(check string) "schema tag" "shelley.metrics/1" (as_str (member "schema" j));
  Alcotest.(check string) "clock" "fake" (as_str (member "clock" j));
  let units = as_arr (member "units" j) in
  Alcotest.(check int) "one entry per file" 2 (List.length units);
  List.iter
    (fun u ->
      ignore (as_str (member "name" u));
      ignore (as_int (member "lane" u));
      Alcotest.(check bool) "total_us >= 0" true (as_int (member "total_us" u) >= 0);
      Alcotest.(check bool) "spans > 0" true (as_int (member "spans" u) > 0))
    units;
  let phases = as_arr (member "phases" j) in
  Alcotest.(check bool) "phases present" true (List.length phases > 0);
  let phase_names = List.map (fun p -> as_str (member "name" p)) phases in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " phase present") true
        (List.mem expected phase_names))
    [ "unit"; "parse"; "extract"; "usage"; "claims"; "language.product" ];
  List.iter
    (fun p ->
      let count = as_int (member "count" p) in
      let total = as_int (member "total_us" p) in
      let mean = as_int (member "mean_us" p) in
      Alcotest.(check bool) "count > 0" true (count > 0);
      Alcotest.(check int) "mean consistent" (total / count) mean)
    phases;
  match member "counters" j with
  | Obj counters ->
    List.iter
      (fun key ->
        Alcotest.(check bool) (key ^ " counted") true
          (match List.assoc_opt key counters with
          | Some (Num f) -> f > 0.0
          | _ -> false))
      [ "parse.classes"; "models.extracted"; "usage.nfa_states" ]
  | _ -> Alcotest.fail "counters must be an object"

(* --- Chrome trace ---------------------------------------------------------- *)

let trace_events () =
  let j = parse_json (Obs.render_chrome_trace ()) in
  Alcotest.(check string) "ms display" "ms" (as_str (member "displayTimeUnit" j));
  as_arr (member "traceEvents" j)

let test_trace_well_nested_with_lanes () =
  with_obs ~fake_clock:true @@ fun () ->
  (* jobs = 2 forces the fork path: profiles come back over the pipe and are
     merged under their pool lanes. *)
  let verdicts = Checker.check_files ~jobs:2 (Lazy.force corpus_dir) in
  Alcotest.(check int) "two files" 2 (List.length verdicts);
  let events = trace_events () in
  let by_ph ph =
    List.filter (fun e -> String.equal (as_str (member "ph" e)) ph) events
  in
  (* One thread_name metadata row per lane that appears, plus the
     orchestrator; every worker tid is a real pool lane + 1. *)
  let meta_tids =
    by_ph "M"
    |> List.filter (fun e -> String.equal (as_str (member "name" e)) "thread_name")
    |> List.map (fun e -> as_int (member "tid" e))
  in
  let b_tids = List.sort_uniq compare (List.map (fun e -> as_int (member "tid" e)) (by_ph "B")) in
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "tid %d has a thread_name row" tid)
        true (List.mem tid meta_tids);
      Alcotest.(check bool)
        (Printf.sprintf "tid %d is a worker lane" tid)
        true
        (tid >= 1 && tid <= 2))
    b_tids;
  (* Well-nestedness per tid: every E closes the innermost open B. *)
  let tids = List.sort_uniq compare (List.map (fun e -> as_int (member "tid" e)) events) in
  List.iter
    (fun tid ->
      let stack = ref [] in
      List.iter
        (fun e ->
          if as_int (member "tid" e) = tid then
            match as_str (member "ph" e) with
            | "B" -> stack := as_str (member "name" e) :: !stack
            | "E" -> (
              let name = as_str (member "name" e) in
              match !stack with
              | top :: rest when String.equal top name -> stack := rest
              | _ -> Alcotest.failf "tid %d: E %S unmatched" tid name)
            | _ -> ())
        events;
      Alcotest.(check (list string))
        (Printf.sprintf "tid %d fully closed" tid)
        [] !stack)
    tids;
  (* Both unit spans present, one per file. *)
  let unit_bs =
    by_ph "B" |> List.filter (fun e -> String.equal (as_str (member "name" e)) "unit")
  in
  Alcotest.(check int) "one unit span per file" 2 (List.length unit_bs)

(* --- byte identity --------------------------------------------------------- *)

(* Observability must never change what the user sees: for any jobs level,
   per-file outputs and codes with the recorder on equal those with it off. *)
let test_output_byte_identical =
  QCheck2.Test.make ~count:8 ~name:"report output identical with obs on/off"
    QCheck2.Gen.(int_range 1 4)
    (fun jobs ->
      Obs.disable ();
      let off = Checker.check_files ~jobs (Lazy.force corpus_dir) in
      let on =
        with_obs ~fake_clock:true @@ fun () ->
        Checker.check_files ~jobs (Lazy.force corpus_dir)
      in
      List.for_all2
        (fun (a : Checker.verdict) (b : Checker.verdict) ->
          String.equal a.Checker.output b.Checker.output && a.Checker.code = b.Checker.code)
        off on)

let () =
  Alcotest.run "obs"
    [
      ( "recorder",
        [
          Alcotest.test_case "disabled recorder is inert" `Quick test_disabled_inert;
          Alcotest.test_case "counters accumulate" `Quick test_counters_accumulate;
          Alcotest.test_case "spans nest, survive exceptions" `Quick
            test_span_nesting_and_exceptions;
          Alcotest.test_case "fake clock renders deterministically" `Quick
            test_fake_clock_deterministic;
          Alcotest.test_case "units isolated from each other" `Quick test_unit_isolation;
        ] );
      ( "limits-ledger",
        [
          Alcotest.test_case "snapshot empty then monotone" `Quick
            test_snapshot_empty_and_monotone;
          Alcotest.test_case "cumulative across constructions" `Quick
            test_snapshot_multiple_constructions;
          Alcotest.test_case "consumed diffs snapshots" `Quick test_consumed_deltas;
          Alcotest.test_case "check records high-water marks" `Quick test_check_high_water;
          Alcotest.test_case "reduced budget gets a fresh ledger" `Quick
            test_reduced_fresh_ledger;
        ] );
      ( "runner-lanes",
        [
          Alcotest.test_case "inline path is lane 0" `Quick test_map_ex_inline_lane_zero;
          Alcotest.test_case "lanes bounded by pool size" `Quick test_map_ex_lanes_bounded;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "metrics JSON schema" `Quick test_metrics_json_schema;
          Alcotest.test_case "chrome trace well-nested, worker lanes" `Quick
            test_trace_well_nested_with_lanes;
          QCheck_alcotest.to_alcotest test_output_byte_identical;
        ] );
    ]
