(* The serve daemon's one-shot-equivalence contract, proven two ways:
   in-process (Serve.handle_line is a pure string -> string handler, so the
   QCheck property drives it with no socket at all) and end-to-end (a forked
   daemon on a real Unix socket, SIGTERM-ed mid-request, must drain
   gracefully: complete response bytes, exit 0, cache persisted, socket
   unlinked, no orphan workers). *)

open Testutil

(* --- Corpus generation (same shapes as test_cache) ---------------------------- *)

type spec =
  | Valve
  | Bad
  | Broken
  | Gen of Prog.t

let read_sample name =
  let path =
    List.find Sys.file_exists
      [ Filename.concat "../samples" name; Filename.concat "samples" name ]
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let valve_source = read_sample "valve.py"
let bad_source = read_sample "bad_sector.py"
let broken_source = "@sys\nclass Broken:\n    def oops(self:\n        return [\n"
let driver_alphabet = List.map sym [ "test"; "open"; "close"; "clean" ]

let render_prog p =
  let buf = Buffer.create 256 in
  let pad n = String.make n ' ' in
  let rec stmt indent p =
    match (p : Prog.t) with
    | Call f -> Buffer.add_string buf (pad indent ^ "self.a." ^ Symbol.name f ^ "()\n")
    | Skip -> Buffer.add_string buf (pad indent ^ "print(\"skip\")\n")
    | Return -> Buffer.add_string buf (pad indent ^ "return []\n")
    | Seq (a, b) ->
      stmt indent a;
      stmt indent b
    | If (a, b) ->
      Buffer.add_string buf (pad indent ^ "if self.flag.value():\n");
      stmt (indent + 4) a;
      Buffer.add_string buf (pad indent ^ "else:\n");
      stmt (indent + 4) b
    | Loop a ->
      Buffer.add_string buf (pad indent ^ "while self.flag.value():\n");
      stmt (indent + 4) a
  in
  stmt 8 p;
  Buffer.contents buf

let gen_source p =
  valve_source
  ^ Printf.sprintf
      {|

@sys(["a"])
class Driver:
    def __init__(self):
        self.a = Valve()
        self.flag = Pin(25, IN)

    @op_initial_final
    def run(self):
%s        return []
|}
      (render_prog p)

let source_of = function
  | Valve -> valve_source
  | Bad -> bad_source
  | Broken -> broken_source
  | Gen p -> gen_source p

let spec_name = function
  | Valve -> "valve"
  | Bad -> "bad"
  | Broken -> "broken"
  | Gen p -> "gen " ^ Prog.to_string p

let spec_gen : spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (1, return Valve);
      (1, return Bad);
      (1, return Broken);
      (3, map (fun p -> Gen p) (prog_gen_over driver_alphabet));
    ]

let corpus_gen = QCheck2.Gen.(list_size (int_range 1 4) spec_gen)

let spec_shrink = function
  | Valve -> Seq.empty
  | Bad | Broken -> Seq.return Valve
  | Gen p -> Seq.map (fun p' -> Gen p') (prog_shrink p)

let rec corpus_shrink = function
  | [] -> Seq.empty
  | x :: rest ->
    Seq.append
      (Seq.return rest)
      (Seq.append
         (Seq.map (fun x' -> x' :: rest) (spec_shrink x))
         (Seq.map (fun rest' -> x :: rest') (corpus_shrink rest)))

let corpus_arb =
  arbitrary
    ~print:(fun specs -> String.concat " | " (List.map spec_name specs))
    ~shrink:corpus_shrink corpus_gen

let counter = ref 0

let with_corpus specs f =
  incr counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "shelley_servetest_%d_%d" (Unix.getpid ()) !counter)
  in
  Unix.mkdir dir 0o755;
  let files =
    List.mapi
      (fun i spec ->
        let path = Filename.concat dir (Printf.sprintf "unit_%d.py" i) in
        let oc = open_out_bin path in
        output_string oc (source_of spec);
        close_out oc;
        path)
      specs
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir files)

(* --- handle_line plumbing ----------------------------------------------------- *)

let with_state ?(jobs = 2) ?max_worker_mem body =
  let st = Serve.make_state ?max_worker_mem ~jobs () in
  Fun.protect ~finally:(fun () -> Serve.shutdown_state st) (fun () -> body st)

let request ?priority ?deadline_ms files =
  let params =
    [ ("files", Jsonl.Arr (List.map (fun f -> Jsonl.Str f) files)) ]
    @ (match priority with
      | Some p -> [ ("priority", Jsonl.Num (float_of_int p)) ]
      | None -> [])
    @
    match deadline_ms with
    | Some ms -> [ ("deadline_ms", Jsonl.Num ms) ]
    | None -> []
  in
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("id", Jsonl.Num 1.);
         ("method", Jsonl.Str "check");
         ("params", Jsonl.Obj params);
       ])

let check_request files = request files

(* Extract (output, code) from a result response; fail loudly otherwise. *)
let result_of resp =
  match Jsonl.parse resp with
  | Error msg -> Alcotest.failf "unparsable response: %s" msg
  | Ok j -> (
    match Jsonl.member "result" j with
    | None -> Alcotest.failf "error response: %s" resp
    | Some r -> (
      match (Jsonl.mem_str "output" r, Jsonl.mem_num "code" r) with
      | Some output, Some code -> (output, int_of_float code)
      | _ -> Alcotest.failf "malformed result: %s" resp))

(* What one-shot `shelley check` prints on stdout, from its own engine. *)
let oneshot ?(jobs = 1) files =
  let verdicts = Checker.check_files ~jobs files in
  let code = Checker.exit_code verdicts in
  let buf = Buffer.create 256 in
  List.iter (fun (v : Checker.verdict) -> Buffer.add_string buf v.Checker.output) verdicts;
  if code = 0 then Buffer.add_string buf "OK: specification verified\n";
  (Buffer.contents buf, code)

(* --- The equivalence property -------------------------------------------------- *)

let prop_serve_matches_oneshot =
  qtest_arb "serve check = one-shot check -j 1" ~count:10 corpus_arb (fun specs ->
      with_corpus specs (fun _dir files ->
          with_state @@ fun st ->
          let resp, k = Serve.handle_line st (check_request files) in
          assert (k = `Continue);
          let output, code = result_of resp in
          let exp_output, exp_code = oneshot files in
          String.equal output exp_output && code = exp_code))

let with_fault spec f =
  Checker.fault_injection := true;
  Unix.putenv "SHELLEY_FAULT" spec;
  Fun.protect
    ~finally:(fun () ->
      Checker.fault_injection := false;
      Unix.putenv "SHELLEY_FAULT" "")
    f

let prop_serve_matches_oneshot_under_crashes =
  (* With a worker SIGKILL injected on the first unit, the daemon's response
     must still be byte-identical to the pooled one-shot engine under the
     same fault — the crashed unit carries its Worker_crashed block, and the
     response arrives instead of the daemon dying with its worker. *)
  qtest_arb "serve check = one-shot under worker crashes" ~count:6 corpus_arb
    (fun specs ->
      with_corpus specs (fun _dir files ->
          with_fault "crash:unit_0.py" @@ fun () ->
          with_state @@ fun st ->
          let resp, k = Serve.handle_line st (check_request files) in
          assert (k = `Continue);
          let output, code = result_of resp in
          let exp_output, exp_code = oneshot ~jobs:2 files in
          String.equal output exp_output && code = exp_code
          && contains output "WORKER CRASHED"))

(* --- Protocol robustness -------------------------------------------------------- *)

let test_handle_line_robustness () =
  with_state @@ fun st ->
  let errorish line =
    let resp, k = Serve.handle_line st line in
    Alcotest.(check bool) (line ^ ": continues") true (k = `Continue);
    Alcotest.(check bool) (line ^ ": error response") true (contains resp "\"error\"")
  in
  errorish "{not json";
  errorish "{\"id\":1}";
  errorish "{\"id\":1,\"method\":\"frobnicate\"}";
  errorish "{\"id\":1,\"method\":\"check\",\"params\":{\"files\":[]}}";
  (* A missing model file is a per-unit verdict, not a dead daemon. *)
  let resp, _ = Serve.handle_line st (check_request [ "no/such/file.py" ]) in
  let output, code = result_of resp in
  Alcotest.(check int) "unreadable file is code 2" 2 code;
  Alcotest.(check bool) "rendered" true (contains output "cannot read file");
  (* shutdown acknowledges and asks the loop to drain. *)
  let resp, k = Serve.handle_line st "{\"id\":9,\"method\":\"shutdown\"}" in
  Alcotest.(check bool) "shutdown acked" true (contains resp "\"ok\":true");
  Alcotest.(check bool) "drain requested" true (k = `Shutdown)

let test_status_reports_pool () =
  with_state @@ fun st ->
  with_corpus [ Valve ] (fun _dir files ->
      let _ = Serve.handle_line st (check_request files) in
      let resp, _ = Serve.handle_line st "{\"id\":2,\"method\":\"status\"}" in
      match Jsonl.parse resp with
      | Error msg -> Alcotest.failf "unparsable status: %s" msg
      | Ok j ->
        let r = Option.get (Jsonl.member "result" j) in
        Alcotest.(check bool) "pid present" true (Jsonl.mem_num "pid" r <> None);
        let pool = Option.get (Jsonl.member "pool" r) in
        let spawns = int_of_float (Option.get (Jsonl.mem_num "spawns" pool)) in
        Alcotest.(check bool) "workers spawned for the check" true (spawns >= 1))

(* --- SIGTERM drain, end to end -------------------------------------------------- *)

let wait_for ?(timeout = 10.) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let rec waitpid_eintr pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

let test_sigterm_drains_cleanly () =
  with_corpus [ Valve; Bad; Valve ] @@ fun dir files ->
  let socket = Filename.concat dir "d.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let cache =
    match Cache.open_dir cache_dir with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  (* Arm the slow fault before forking so the daemon inherits it: the first
     unit's verification stalls ~1 s, leaving a window to SIGTERM the daemon
     mid-request. *)
  with_fault "slow:unit_0.py" @@ fun () ->
  let daemon =
    match Unix.fork () with
    | 0 -> (
      (* Child: become the daemon. _exit so the test runner's own at_exit
         machinery never runs twice. *)
      try Unix._exit (Serve.serve ~socket ~jobs:2 ~cache ()) with _ -> Unix._exit 99)
    | pid -> pid
  in
  if not (wait_for (fun () -> Sys.file_exists socket)) then
    Alcotest.fail "daemon socket never appeared";
  (* One quick request first (the slow fault only matches unit_0), so the
     workers exist and status can tell us their pids. *)
  (match Serve.client_call ~socket (check_request [ List.nth files 1 ]) with
  | Error msg -> Alcotest.failf "warm-up check failed: %s" msg
  | Ok _ -> ());
  let worker_pids =
    match Serve.client_call ~socket "{\"id\":1,\"method\":\"status\"}" with
    | Error msg -> Alcotest.failf "status failed: %s" msg
    | Ok resp -> (
      match Jsonl.parse resp with
      | Error msg -> Alcotest.failf "unparsable status: %s" msg
      | Ok j ->
        Option.get (Jsonl.member "result" j)
        |> Jsonl.member "workers" |> Option.get |> Jsonl.to_list |> Option.get
        |> List.filter_map Jsonl.to_num |> List.map int_of_float)
  in
  Alcotest.(check bool) "workers live before the drain" true (worker_pids <> []);
  let killer =
    match Unix.fork () with
    | 0 ->
      Unix.sleepf 0.4;
      (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  (* The check request is in flight when the SIGTERM lands; the drain
     contract says we still receive the complete one-shot-identical bytes. *)
  let resp =
    match Serve.client_call ~socket (check_request files) with
    | Error msg -> Alcotest.failf "check during drain failed: %s" msg
    | Ok resp -> resp
  in
  let output, code = result_of resp in
  let exp_output, exp_code = oneshot files in
  Alcotest.(check string) "drained response byte-identical" exp_output output;
  Alcotest.(check int) "drained code" exp_code code;
  ignore (waitpid_eintr killer);
  (match waitpid_eintr daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d, not 0" n
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Alcotest.fail "daemon did not exit cleanly");
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
  (* Finished units' cache entries were flushed before exit. *)
  let entries = ref 0 in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter (fun e -> walk (Filename.concat path e)) (Sys.readdir path)
    else if Filename.check_suffix path ".entry" then incr entries
  in
  walk cache_dir;
  Alcotest.(check bool) "cache entries persisted" true (!entries >= 1);
  (* No orphans: every worker the daemon reported is gone. *)
  List.iter
    (fun pid ->
      match Unix.kill pid 0 with
      | () -> Alcotest.failf "worker %d orphaned by the drain" pid
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()
      | exception _ -> ())
    worker_pids

(* --- Admission scheduling (pure) ------------------------------------------------ *)

let submit_ok q ~client ?(priority = 0) ?deadline payload =
  match Admission.submit q ~client ~priority ~deadline ~now:0.0 payload with
  | Admission.Admitted -> ()
  | Admission.Shed _ -> Alcotest.failf "unexpected shed of %s" payload
  | Admission.Expired -> Alcotest.failf "unexpected expiry of %s" payload

let drain_order ?(now = 0.0) q =
  let rec go acc =
    match Admission.next q ~now with
    | Some (_, p) -> go (p :: acc)
    | None -> List.rev acc
  in
  go []

let test_admission_fairness () =
  (* Client 1 floods three requests before clients 2 and 3 queue one and
     two: dispatch interleaves per client instead of draining the flood. *)
  let q = Admission.create ~max_queue:16 in
  submit_ok q ~client:1 "A1";
  submit_ok q ~client:1 "A2";
  submit_ok q ~client:1 "A3";
  submit_ok q ~client:2 "B1";
  submit_ok q ~client:3 "C1";
  submit_ok q ~client:3 "C2";
  Alcotest.(check (list string))
    "round-robin across clients"
    [ "A1"; "B1"; "C1"; "A2"; "C2"; "A3" ]
    (drain_order q)

let test_admission_priority () =
  let q = Admission.create ~max_queue:16 in
  submit_ok q ~client:1 "low1";
  submit_ok q ~client:1 "low2";
  submit_ok q ~client:2 ~priority:5 "high";
  Alcotest.(check (list string))
    "priority preempts arrival and fairness"
    [ "high"; "low1"; "low2" ] (drain_order q)

let test_admission_priority_clamp () =
  (* priority is client-supplied: an absurd value buys no more precedence
     than max_priority, so the flood still round-robins with a client at
     the (clamped-equal) top level instead of starving it. *)
  let q = Admission.create ~max_queue:16 in
  submit_ok q ~client:1 ~priority:1_000_000 "A1";
  submit_ok q ~client:1 ~priority:1_000_000 "A2";
  submit_ok q ~client:1 ~priority:1_000_000 "A3";
  submit_ok q ~client:2 ~priority:Admission.max_priority "B1";
  Alcotest.(check (list string))
    "million-priority flood clamps to max and round-robins"
    [ "A1"; "B1"; "A2"; "A3" ]
    (drain_order q)

let test_admission_aging () =
  (* A queued request gains one effective level per second waited, so even
     a continuous max-priority flood cannot starve the lowest priority. *)
  let q = Admission.create ~max_queue:16 in
  (match
     Admission.submit q ~client:1 ~priority:Admission.min_priority
       ~deadline:None ~now:0.0 "patient"
   with
  | Admission.Admitted -> ()
  | Admission.Shed _ | Admission.Expired -> Alcotest.fail "unexpected refusal");
  (match
     Admission.submit q ~client:2 ~priority:Admission.max_priority
       ~deadline:None ~now:25.0 "vip"
   with
  | Admission.Admitted -> ()
  | Admission.Shed _ | Admission.Expired -> Alcotest.fail "unexpected refusal");
  (* After 25 s queued, patient's effective priority (-10 + 25) beats a
     fresh +10. *)
  Alcotest.(check (list string))
    "aged low-priority request outranks a fresh max-priority one"
    [ "patient"; "vip" ]
    (drain_order ~now:25.0 q);
  (* Without the wait, priority order holds. *)
  let q2 = Admission.create ~max_queue:16 in
  submit_ok q2 ~client:1 ~priority:Admission.min_priority "low";
  submit_ok q2 ~client:2 ~priority:Admission.max_priority "high";
  Alcotest.(check (list string))
    "fresh requests dispatch by priority" [ "high"; "low" ]
    (drain_order q2)

let test_admission_shed () =
  let q = Admission.create ~max_queue:2 in
  submit_ok q ~client:1 "a";
  submit_ok q ~client:2 "b";
  (match Admission.submit q ~client:3 ~priority:0 ~deadline:None ~now:0.0 "c" with
  | Admission.Shed hint ->
    Alcotest.(check int) "hint scales with backlog" 200 hint
  | Admission.Admitted | Admission.Expired -> Alcotest.fail "full queue must shed");
  Alcotest.(check int) "queue untouched by the shed" 2 (Admission.length q)

let test_admission_expiry () =
  let q = Admission.create ~max_queue:16 in
  (* Dead on arrival: the deadline predates submission. *)
  (match Admission.submit q ~client:1 ~priority:0 ~deadline:(Some 1.0) ~now:2.0 "doa" with
  | Admission.Expired -> ()
  | Admission.Admitted | Admission.Shed _ -> Alcotest.fail "past deadline must expire");
  submit_ok q ~client:1 ~deadline:5.0 "mortal";
  submit_ok q ~client:2 "patient";
  Alcotest.(check (list string))
    "deadline passed while queued"
    [ "mortal" ]
    (List.map snd (Admission.expired q ~now:6.0));
  Alcotest.(check (list string)) "patient request survives" [ "patient" ] (drain_order q)

let test_admission_drop_client () =
  let q = Admission.create ~max_queue:16 in
  submit_ok q ~client:1 "a1";
  submit_ok q ~client:1 "a2";
  submit_ok q ~client:2 "b1";
  Alcotest.(check int) "dropped both queued requests" 2 (Admission.drop_client q 1);
  Alcotest.(check (list string)) "other client unaffected" [ "b1" ] (drain_order q)

(* --- Raw-socket plumbing for the degradation tests ------------------------------- *)

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let send_raw fd s =
  let b = Bytes.of_string s in
  let rec go pos =
    if pos < Bytes.length b then go (pos + Unix.write fd b pos (Bytes.length b - pos))
  in
  go 0

(* One response line (newline stripped); [None] on timeout or EOF-first. *)
let recv_line ?(timeout = 15.) fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i -> Some (String.sub s 0 i)
    | None ->
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0.0 then None
      else (
        match Unix.select [ fd ] [] [] left with
        | [], _, _ -> None
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> None
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let recv_eof ?(timeout = 10.) fd =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then false
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> false
      | _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> true
        | _ -> go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let spawn_daemon ~socket serve =
  match Unix.fork () with
  | 0 -> ( try Unix._exit (serve ()) with _ -> Unix._exit 99)
  | pid ->
    if wait_for (fun () -> Sys.file_exists socket) then pid
    else begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (waitpid_eintr pid);
      Alcotest.fail "daemon socket never appeared"
    end

let graceful_stop ~socket pid =
  (match Serve.client_call ~socket "{\"id\":99,\"method\":\"shutdown\"}" with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "shutdown request failed: %s" msg);
  match waitpid_eintr pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d, not 0" n
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Alcotest.fail "daemon died by signal"

(* Fork the daemon, run [body], shut down gracefully; SIGKILL it instead if
   [body] fails, so one failing test never leaks a daemon into the next. *)
let with_daemon ~socket serve body =
  let pid = spawn_daemon ~socket serve in
  match body () with
  | () -> graceful_stop ~socket pid
  | exception exn ->
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (waitpid_eintr pid);
    raise exn

let status_field ~socket field =
  match Serve.client_call ~socket "{\"id\":7,\"method\":\"status\"}" with
  | Error msg -> Alcotest.failf "status failed: %s" msg
  | Ok resp -> (
    match Jsonl.parse resp with
    | Error msg -> Alcotest.failf "unparsable status: %s" msg
    | Ok j ->
      Option.get (Jsonl.member "result" j)
      |> Jsonl.member "load" |> Option.get |> Jsonl.mem_num field |> Option.get
      |> int_of_float)

(* --- Degradation paths, end to end ----------------------------------------------- *)

let test_oversized_frame () =
  with_corpus [] @@ fun dir _files ->
  let socket = Filename.concat dir "d.sock" in
  with_daemon ~socket
    (fun () -> Serve.serve ~socket ~jobs:1 ~max_frame_bytes:1024 ())
  @@ fun () ->
  (* A complete oversized line. *)
  let fd = raw_connect socket in
  send_raw fd (String.make 2048 'x' ^ "\n");
  (match recv_line fd with
  | Some resp ->
    Alcotest.(check bool) "structured error" true (contains resp "frame_too_large")
  | None -> Alcotest.fail "no response to the oversized frame");
  Alcotest.(check bool) "connection closed" true (recv_eof fd);
  Unix.close fd;
  (* A partial frame already larger than any legal frame: shed without
     waiting for a newline that would only make it bigger. *)
  let fd2 = raw_connect socket in
  send_raw fd2 (String.make 2048 'y');
  (match recv_line fd2 with
  | Some resp ->
    Alcotest.(check bool) "partial shed early" true (contains resp "frame_too_large")
  | None -> Alcotest.fail "no response to the oversized partial");
  Alcotest.(check bool) "partial's connection closed" true (recv_eof fd2);
  Unix.close fd2;
  Alcotest.(check int) "both counted" 2 (status_field ~socket "frames_oversized")

let test_slow_loris_reap () =
  with_corpus [] @@ fun dir _files ->
  let socket = Filename.concat dir "d.sock" in
  with_daemon ~socket
    (fun () -> Serve.serve ~socket ~jobs:1 ~read_deadline:0.3 ())
  @@ fun () ->
  (* An idle connection (no partial frame) must never be reaped... *)
  let idle = raw_connect socket in
  (* ...while a connection that starts a frame and stalls must be. *)
  let loris = raw_connect socket in
  send_raw loris "{\"id\":1,";
  (match recv_line ~timeout:10. loris with
  | Some resp ->
    Alcotest.(check bool) "structured reap" true (contains resp "read_timeout")
  | None -> Alcotest.fail "slow-loris connection never reaped");
  Alcotest.(check bool) "loris closed" true (recv_eof loris);
  Unix.close loris;
  (* The idle connection outlived the reap and still gets served. *)
  send_raw idle "{\"id\":2,\"method\":\"status\"}\n";
  (match recv_line idle with
  | Some resp ->
    Alcotest.(check bool) "idle conn survived and counted the reap" true
      (contains resp "\"conns_reaped\":1")
  | None -> Alcotest.fail "idle connection was wrongly reaped");
  Unix.close idle

let test_connection_cap () =
  with_corpus [] @@ fun dir _files ->
  let socket = Filename.concat dir "d.sock" in
  with_daemon ~socket (fun () -> Serve.serve ~socket ~jobs:1 ~max_conns:2 ())
  @@ fun () ->
  let a = raw_connect socket in
  let b = raw_connect socket in
  (* A status round-trip on [a] proves both accepts are registered, so the
     third connect below is deterministically over the cap. *)
  send_raw a "{\"id\":1,\"method\":\"status\"}\n";
  (match recv_line a with
  | Some _ -> ()
  | None -> Alcotest.fail "status handshake failed");
  let c = raw_connect socket in
  (match recv_line c with
  | Some resp ->
    Alcotest.(check bool) "retryable structured refusal" true
      (contains resp "overloaded");
    Alcotest.(check bool) "refusal carries a retry hint" true
      (contains resp "retry_after_ms")
  | None -> Alcotest.fail "no refusal on the over-cap connection");
  Alcotest.(check bool) "over-cap connection closed" true (recv_eof c);
  Unix.close c;
  (* The accepted connections are unharmed, and the refusal was counted. *)
  send_raw b "{\"id\":2,\"method\":\"status\"}\n";
  (match recv_line b with
  | Some resp ->
    Alcotest.(check bool) "accepted conns survive; rejection counted" true
      (contains resp "\"conns_rejected\":1")
  | None -> Alcotest.fail "accepted connection wedged by the refusal");
  Unix.close a;
  Unix.close b

let test_queue_full_shed () =
  with_corpus [ Valve ] @@ fun dir files ->
  let socket = Filename.concat dir "d.sock" in
  let slow_file = List.hd files in
  with_fault "slow:unit_0.py" @@ fun () ->
  with_daemon ~socket (fun () -> Serve.serve ~socket ~jobs:1 ~max_queue:1 ())
  @@ fun () ->
  let a = raw_connect socket
  and b = raw_connect socket
  and c = raw_connect socket in
  (* Accepts happen in connect order: once C answers a status request, all
     three connections are registered, so B's and C's requests below are
     guaranteed to contend in the same admission round. *)
  send_raw c "{\"id\":0,\"method\":\"status\"}\n";
  (match recv_line c with
  | Some _ -> ()
  | None -> Alcotest.fail "status handshake failed");
  (* A occupies the single worker (the slow fault stalls it ~1 s)... *)
  send_raw a (check_request [ slow_file ] ^ "\n");
  Unix.sleepf 0.4;
  (* ...so B and C are both buffered when the daemon next reads: both are
     admitted in the same round, the queue holds one, exactly one sheds. *)
  send_raw b (check_request [ slow_file ] ^ "\n");
  send_raw c (check_request [ slow_file ] ^ "\n");
  (match recv_line a with
  | Some resp ->
    let _, code = result_of resp in
    Alcotest.(check int) "the in-flight request completed" 0 code
  | None -> Alcotest.fail "A never answered");
  let rb = recv_line b
  and rc = recv_line c in
  let is_shed = function
    | Some resp -> contains resp "\"error_code\":\"overloaded\""
    | None -> false
  in
  Alcotest.(check int)
    "exactly one of the two sheds" 1
    (List.length (List.filter is_shed [ rb; rc ]));
  List.iter
    (fun r ->
      match r with
      | Some resp when is_shed r ->
        Alcotest.(check bool) "shed carries code 4" true (contains resp "\"code\":4");
        Alcotest.(check bool)
          "shed carries a retry hint" true
          (contains resp "\"retry_after_ms\":")
      | Some resp ->
        let _, code = result_of resp in
        Alcotest.(check int) "the admitted request completed" 0 code
      | None -> Alcotest.fail "a flood client never answered")
    [ rb; rc ];
  Alcotest.(check int) "shed counted" 1 (status_field ~socket "shed");
  List.iter Unix.close [ a; b; c ]

let test_queued_deadline_expiry () =
  with_corpus [ Valve ] @@ fun dir files ->
  let socket = Filename.concat dir "d.sock" in
  let slow_file = List.hd files in
  with_fault "slow:unit_0.py" @@ fun () ->
  with_daemon ~socket (fun () -> Serve.serve ~socket ~jobs:1 ~max_queue:8 ())
  @@ fun () ->
  let a = raw_connect socket
  and b = raw_connect socket
  and c = raw_connect socket in
  (* Same handshake as the shed test: all three registered before the flood. *)
  send_raw c "{\"id\":0,\"method\":\"status\"}\n";
  (match recv_line c with
  | Some _ -> ()
  | None -> Alcotest.fail "status handshake failed");
  (* A occupies the worker; B (higher priority) is guaranteed the next
     dispatch slot; C's 100 ms queue budget therefore expires while B's
     slow verification runs. *)
  send_raw a (check_request [ slow_file ] ^ "\n");
  Unix.sleepf 0.4;
  send_raw b (request ~priority:1 [ slow_file ] ^ "\n");
  send_raw c (request ~deadline_ms:100. [ slow_file ] ^ "\n");
  (match recv_line c with
  | Some resp ->
    Alcotest.(check bool) "expired, not run" true (contains resp "\"error_code\":\"expired\"");
    Alcotest.(check bool) "expiry is exit 3" true (contains resp "\"code\":3")
  | None -> Alcotest.fail "C never answered");
  List.iter
    (fun fd ->
      match recv_line fd with
      | Some resp ->
        let _, code = result_of resp in
        Alcotest.(check int) "dispatched request completed" 0 code
      | None -> Alcotest.fail "a dispatched request never answered")
    [ a; b ];
  Alcotest.(check int) "expiry counted" 1 (status_field ~socket "expired");
  List.iter Unix.close [ a; b; c ]

let test_worker_mem_cap () =
  (* A ballooning verification under --max-worker-mem dies on a catchable
     Out_of_memory inside the worker and is rendered as a resource-limit
     verdict (exit 3) — same class as running out of fuel, not a crash.
     512 MiB sits comfortably above the OCaml runtime's own reservations
     and far below the balloon's 4 GiB bound. *)
  with_corpus [ Valve ] @@ fun _dir files ->
  with_fault "balloon:unit_0.py" @@ fun () ->
  with_state ~jobs:1 ~max_worker_mem:512 @@ fun st ->
  let resp, _ = Serve.handle_line st (check_request files) in
  let output, code = result_of resp in
  Alcotest.(check int) "resource-limit exit code" 3 code;
  Alcotest.(check bool)
    "classified, not crashed" true
    (contains output "RESOURCE LIMIT EXCEEDED");
  Alcotest.(check bool)
    "names the cap" true
    (contains output "worker address space MiB (limit 512)");
  Alcotest.(check bool) "not a worker crash" false (contains output "WORKER CRASHED")

let test_client_request_backoff () =
  (* Against a socket nobody listens on: the retry loop must consume its
     whole budget with capped exponential backoff before reporting
     unreachable. The sleep seam records the waits. *)
  let sleeps = ref [] in
  let sleep s = sleeps := s :: !sleeps in
  match
    Serve.client_request ~socket:"/nonexistent/shelley-test.sock" ~retries:3
      ~backoff_base_ms:10 ~backoff_cap_ms:40 ~sleep "{\"id\":1,\"method\":\"status\"}"
  with
  | Ok _ -> Alcotest.fail "connected to a nonexistent socket?"
  | Error (`Overloaded _) -> Alcotest.fail "misclassified as overloaded"
  | Error (`Unreachable (attempts, _)) ->
    Alcotest.(check int) "whole budget consumed" 4 attempts;
    let waits = List.rev !sleeps in
    Alcotest.(check int) "one backoff per retry" 3 (List.length waits);
    (* Expected bases 10, 20, 40 ms; jitter multiplies by [0.75, 1.25). *)
    List.iteri
      (fun i w ->
        let base = float_of_int (10 * (1 lsl i)) /. 1000.0 in
        Alcotest.(check bool)
          (Printf.sprintf "wait %d within jitter band" i)
          true
          (w >= base *. 0.75 && w <= base *. 1.25))
      waits

(* --- Drain with idle clients ------------------------------------------------------ *)

let test_drain_with_idle_clients () =
  with_corpus [] @@ fun dir _files ->
  let socket = Filename.concat dir "d.sock" in
  let daemon = spawn_daemon ~socket (fun () -> Serve.serve ~socket ~jobs:1 ()) in
  match
    let idles = List.init 3 (fun _ -> raw_connect socket) in
    Unix.sleepf 0.3;
    (* connected, no partial frames *)
    Unix.kill daemon Sys.sigterm;
    (match waitpid_eintr daemon with
    | _, Unix.WEXITED 0 -> ()
    | _, Unix.WEXITED n ->
      Alcotest.failf "daemon exited %d with idle clients connected" n
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Alcotest.fail "daemon died by signal");
    Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
    List.iter
      (fun fd ->
        Alcotest.(check bool) "idle client saw a clean EOF" true (recv_eof fd);
        Unix.close fd)
      idles
  with
  | () -> ()
  | exception exn ->
    (try Unix.kill daemon Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (waitpid_eintr daemon);
    raise exn

(* --- Suite ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "one-shot equivalence",
        [ prop_serve_matches_oneshot; prop_serve_matches_oneshot_under_crashes ] );
      ( "protocol",
        [
          Alcotest.test_case "handle_line robustness" `Quick test_handle_line_robustness;
          Alcotest.test_case "status reports the pool" `Quick test_status_reports_pool;
        ] );
      ( "admission",
        [
          Alcotest.test_case "per-client round-robin" `Quick test_admission_fairness;
          Alcotest.test_case "priority levels" `Quick test_admission_priority;
          Alcotest.test_case "priority clamped" `Quick test_admission_priority_clamp;
          Alcotest.test_case "queued requests age" `Quick test_admission_aging;
          Alcotest.test_case "bounded queue sheds" `Quick test_admission_shed;
          Alcotest.test_case "deadline expiry" `Quick test_admission_expiry;
          Alcotest.test_case "disconnected client drops" `Quick test_admission_drop_client;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "oversized frame" `Quick test_oversized_frame;
          Alcotest.test_case "slow-loris reap" `Quick test_slow_loris_reap;
          Alcotest.test_case "connection cap" `Quick test_connection_cap;
          Alcotest.test_case "queue-full shed" `Quick test_queue_full_shed;
          Alcotest.test_case "queued-deadline expiry" `Quick test_queued_deadline_expiry;
          Alcotest.test_case "worker memory cap" `Quick test_worker_mem_cap;
          Alcotest.test_case "client retry backoff" `Quick test_client_request_backoff;
        ] );
      ( "graceful drain",
        [
          Alcotest.test_case "SIGTERM drains cleanly" `Quick test_sigterm_drains_cleanly;
          Alcotest.test_case "idle clients see clean EOF" `Quick
            test_drain_with_idle_clients;
        ] );
    ]
