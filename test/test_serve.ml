(* The serve daemon's one-shot-equivalence contract, proven two ways:
   in-process (Serve.handle_line is a pure string -> string handler, so the
   QCheck property drives it with no socket at all) and end-to-end (a forked
   daemon on a real Unix socket, SIGTERM-ed mid-request, must drain
   gracefully: complete response bytes, exit 0, cache persisted, socket
   unlinked, no orphan workers). *)

open Testutil

(* --- Corpus generation (same shapes as test_cache) ---------------------------- *)

type spec =
  | Valve
  | Bad
  | Broken
  | Gen of Prog.t

let read_sample name =
  let path =
    List.find Sys.file_exists
      [ Filename.concat "../samples" name; Filename.concat "samples" name ]
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let valve_source = read_sample "valve.py"
let bad_source = read_sample "bad_sector.py"
let broken_source = "@sys\nclass Broken:\n    def oops(self:\n        return [\n"
let driver_alphabet = List.map sym [ "test"; "open"; "close"; "clean" ]

let render_prog p =
  let buf = Buffer.create 256 in
  let pad n = String.make n ' ' in
  let rec stmt indent p =
    match (p : Prog.t) with
    | Call f -> Buffer.add_string buf (pad indent ^ "self.a." ^ Symbol.name f ^ "()\n")
    | Skip -> Buffer.add_string buf (pad indent ^ "print(\"skip\")\n")
    | Return -> Buffer.add_string buf (pad indent ^ "return []\n")
    | Seq (a, b) ->
      stmt indent a;
      stmt indent b
    | If (a, b) ->
      Buffer.add_string buf (pad indent ^ "if self.flag.value():\n");
      stmt (indent + 4) a;
      Buffer.add_string buf (pad indent ^ "else:\n");
      stmt (indent + 4) b
    | Loop a ->
      Buffer.add_string buf (pad indent ^ "while self.flag.value():\n");
      stmt (indent + 4) a
  in
  stmt 8 p;
  Buffer.contents buf

let gen_source p =
  valve_source
  ^ Printf.sprintf
      {|

@sys(["a"])
class Driver:
    def __init__(self):
        self.a = Valve()
        self.flag = Pin(25, IN)

    @op_initial_final
    def run(self):
%s        return []
|}
      (render_prog p)

let source_of = function
  | Valve -> valve_source
  | Bad -> bad_source
  | Broken -> broken_source
  | Gen p -> gen_source p

let spec_name = function
  | Valve -> "valve"
  | Bad -> "bad"
  | Broken -> "broken"
  | Gen p -> "gen " ^ Prog.to_string p

let spec_gen : spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (1, return Valve);
      (1, return Bad);
      (1, return Broken);
      (3, map (fun p -> Gen p) (prog_gen_over driver_alphabet));
    ]

let corpus_gen = QCheck2.Gen.(list_size (int_range 1 4) spec_gen)

let spec_shrink = function
  | Valve -> Seq.empty
  | Bad | Broken -> Seq.return Valve
  | Gen p -> Seq.map (fun p' -> Gen p') (prog_shrink p)

let rec corpus_shrink = function
  | [] -> Seq.empty
  | x :: rest ->
    Seq.append
      (Seq.return rest)
      (Seq.append
         (Seq.map (fun x' -> x' :: rest) (spec_shrink x))
         (Seq.map (fun rest' -> x :: rest') (corpus_shrink rest)))

let corpus_arb =
  arbitrary
    ~print:(fun specs -> String.concat " | " (List.map spec_name specs))
    ~shrink:corpus_shrink corpus_gen

let counter = ref 0

let with_corpus specs f =
  incr counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "shelley_servetest_%d_%d" (Unix.getpid ()) !counter)
  in
  Unix.mkdir dir 0o755;
  let files =
    List.mapi
      (fun i spec ->
        let path = Filename.concat dir (Printf.sprintf "unit_%d.py" i) in
        let oc = open_out_bin path in
        output_string oc (source_of spec);
        close_out oc;
        path)
      specs
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir files)

(* --- handle_line plumbing ----------------------------------------------------- *)

let with_state ?(jobs = 2) body =
  let st = Serve.make_state ~jobs () in
  Fun.protect ~finally:(fun () -> Serve.shutdown_state st) (fun () -> body st)

let check_request files =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("id", Jsonl.Num 1.);
         ("method", Jsonl.Str "check");
         ( "params",
           Jsonl.Obj [ ("files", Jsonl.Arr (List.map (fun f -> Jsonl.Str f) files)) ]
         );
       ])

(* Extract (output, code) from a result response; fail loudly otherwise. *)
let result_of resp =
  match Jsonl.parse resp with
  | Error msg -> Alcotest.failf "unparsable response: %s" msg
  | Ok j -> (
    match Jsonl.member "result" j with
    | None -> Alcotest.failf "error response: %s" resp
    | Some r -> (
      match (Jsonl.mem_str "output" r, Jsonl.mem_num "code" r) with
      | Some output, Some code -> (output, int_of_float code)
      | _ -> Alcotest.failf "malformed result: %s" resp))

(* What one-shot `shelley check` prints on stdout, from its own engine. *)
let oneshot ?(jobs = 1) files =
  let verdicts = Checker.check_files ~jobs files in
  let code = Checker.exit_code verdicts in
  let buf = Buffer.create 256 in
  List.iter (fun (v : Checker.verdict) -> Buffer.add_string buf v.Checker.output) verdicts;
  if code = 0 then Buffer.add_string buf "OK: specification verified\n";
  (Buffer.contents buf, code)

(* --- The equivalence property -------------------------------------------------- *)

let prop_serve_matches_oneshot =
  qtest_arb "serve check = one-shot check -j 1" ~count:10 corpus_arb (fun specs ->
      with_corpus specs (fun _dir files ->
          with_state @@ fun st ->
          let resp, k = Serve.handle_line st (check_request files) in
          assert (k = `Continue);
          let output, code = result_of resp in
          let exp_output, exp_code = oneshot files in
          String.equal output exp_output && code = exp_code))

let with_fault spec f =
  Checker.fault_injection := true;
  Unix.putenv "SHELLEY_FAULT" spec;
  Fun.protect
    ~finally:(fun () ->
      Checker.fault_injection := false;
      Unix.putenv "SHELLEY_FAULT" "")
    f

let prop_serve_matches_oneshot_under_crashes =
  (* With a worker SIGKILL injected on the first unit, the daemon's response
     must still be byte-identical to the pooled one-shot engine under the
     same fault — the crashed unit carries its Worker_crashed block, and the
     response arrives instead of the daemon dying with its worker. *)
  qtest_arb "serve check = one-shot under worker crashes" ~count:6 corpus_arb
    (fun specs ->
      with_corpus specs (fun _dir files ->
          with_fault "crash:unit_0.py" @@ fun () ->
          with_state @@ fun st ->
          let resp, k = Serve.handle_line st (check_request files) in
          assert (k = `Continue);
          let output, code = result_of resp in
          let exp_output, exp_code = oneshot ~jobs:2 files in
          String.equal output exp_output && code = exp_code
          && contains output "WORKER CRASHED"))

(* --- Protocol robustness -------------------------------------------------------- *)

let test_handle_line_robustness () =
  with_state @@ fun st ->
  let errorish line =
    let resp, k = Serve.handle_line st line in
    Alcotest.(check bool) (line ^ ": continues") true (k = `Continue);
    Alcotest.(check bool) (line ^ ": error response") true (contains resp "\"error\"")
  in
  errorish "{not json";
  errorish "{\"id\":1}";
  errorish "{\"id\":1,\"method\":\"frobnicate\"}";
  errorish "{\"id\":1,\"method\":\"check\",\"params\":{\"files\":[]}}";
  (* A missing model file is a per-unit verdict, not a dead daemon. *)
  let resp, _ = Serve.handle_line st (check_request [ "no/such/file.py" ]) in
  let output, code = result_of resp in
  Alcotest.(check int) "unreadable file is code 2" 2 code;
  Alcotest.(check bool) "rendered" true (contains output "cannot read file");
  (* shutdown acknowledges and asks the loop to drain. *)
  let resp, k = Serve.handle_line st "{\"id\":9,\"method\":\"shutdown\"}" in
  Alcotest.(check bool) "shutdown acked" true (contains resp "\"ok\":true");
  Alcotest.(check bool) "drain requested" true (k = `Shutdown)

let test_status_reports_pool () =
  with_state @@ fun st ->
  with_corpus [ Valve ] (fun _dir files ->
      let _ = Serve.handle_line st (check_request files) in
      let resp, _ = Serve.handle_line st "{\"id\":2,\"method\":\"status\"}" in
      match Jsonl.parse resp with
      | Error msg -> Alcotest.failf "unparsable status: %s" msg
      | Ok j ->
        let r = Option.get (Jsonl.member "result" j) in
        Alcotest.(check bool) "pid present" true (Jsonl.mem_num "pid" r <> None);
        let pool = Option.get (Jsonl.member "pool" r) in
        let spawns = int_of_float (Option.get (Jsonl.mem_num "spawns" pool)) in
        Alcotest.(check bool) "workers spawned for the check" true (spawns >= 1))

(* --- SIGTERM drain, end to end -------------------------------------------------- *)

let wait_for ?(timeout = 10.) pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Unix.sleepf 0.02;
      go ()
    end
  in
  go ()

let rec waitpid_eintr pid =
  match Unix.waitpid [] pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_eintr pid

let test_sigterm_drains_cleanly () =
  with_corpus [ Valve; Bad; Valve ] @@ fun dir files ->
  let socket = Filename.concat dir "d.sock" in
  let cache_dir = Filename.concat dir "cache" in
  let cache =
    match Cache.open_dir cache_dir with
    | Ok c -> c
    | Error msg -> Alcotest.fail msg
  in
  (* Arm the slow fault before forking so the daemon inherits it: the first
     unit's verification stalls ~1 s, leaving a window to SIGTERM the daemon
     mid-request. *)
  with_fault "slow:unit_0.py" @@ fun () ->
  let daemon =
    match Unix.fork () with
    | 0 -> (
      (* Child: become the daemon. _exit so the test runner's own at_exit
         machinery never runs twice. *)
      try Unix._exit (Serve.serve ~socket ~jobs:2 ~cache ()) with _ -> Unix._exit 99)
    | pid -> pid
  in
  if not (wait_for (fun () -> Sys.file_exists socket)) then
    Alcotest.fail "daemon socket never appeared";
  (* One quick request first (the slow fault only matches unit_0), so the
     workers exist and status can tell us their pids. *)
  (match Serve.client_call ~socket (check_request [ List.nth files 1 ]) with
  | Error msg -> Alcotest.failf "warm-up check failed: %s" msg
  | Ok _ -> ());
  let worker_pids =
    match Serve.client_call ~socket "{\"id\":1,\"method\":\"status\"}" with
    | Error msg -> Alcotest.failf "status failed: %s" msg
    | Ok resp -> (
      match Jsonl.parse resp with
      | Error msg -> Alcotest.failf "unparsable status: %s" msg
      | Ok j ->
        Option.get (Jsonl.member "result" j)
        |> Jsonl.member "workers" |> Option.get |> Jsonl.to_list |> Option.get
        |> List.filter_map Jsonl.to_num |> List.map int_of_float)
  in
  Alcotest.(check bool) "workers live before the drain" true (worker_pids <> []);
  let killer =
    match Unix.fork () with
    | 0 ->
      Unix.sleepf 0.4;
      (try Unix.kill daemon Sys.sigterm with Unix.Unix_error _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  (* The check request is in flight when the SIGTERM lands; the drain
     contract says we still receive the complete one-shot-identical bytes. *)
  let resp =
    match Serve.client_call ~socket (check_request files) with
    | Error msg -> Alcotest.failf "check during drain failed: %s" msg
    | Ok resp -> resp
  in
  let output, code = result_of resp in
  let exp_output, exp_code = oneshot files in
  Alcotest.(check string) "drained response byte-identical" exp_output output;
  Alcotest.(check int) "drained code" exp_code code;
  ignore (waitpid_eintr killer);
  (match waitpid_eintr daemon with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d, not 0" n
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Alcotest.fail "daemon did not exit cleanly");
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket);
  (* Finished units' cache entries were flushed before exit. *)
  let entries = ref 0 in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter (fun e -> walk (Filename.concat path e)) (Sys.readdir path)
    else if Filename.check_suffix path ".entry" then incr entries
  in
  walk cache_dir;
  Alcotest.(check bool) "cache entries persisted" true (!entries >= 1);
  (* No orphans: every worker the daemon reported is gone. *)
  List.iter
    (fun pid ->
      match Unix.kill pid 0 with
      | () -> Alcotest.failf "worker %d orphaned by the drain" pid
      | exception Unix.Unix_error (Unix.ESRCH, _, _) -> ()
      | exception _ -> ())
    worker_pids

(* --- Suite ---------------------------------------------------------------------- *)

let () =
  Alcotest.run "serve"
    [
      ( "one-shot equivalence",
        [ prop_serve_matches_oneshot; prop_serve_matches_oneshot_under_crashes ] );
      ( "protocol",
        [
          Alcotest.test_case "handle_line robustness" `Quick test_handle_line_robustness;
          Alcotest.test_case "status reports the pool" `Quick test_status_reports_pool;
        ] );
      ( "graceful drain",
        [ Alcotest.test_case "SIGTERM drains cleanly" `Quick test_sigterm_drains_cleanly ] );
    ]
