# SY108 positive (with --max-star-height 1): the inner loop survives
# simplification because the outer iteration interleaves it with another
# call, so the behavior regex ((a.open a.close*))* nests stars two deep.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["open"]


@sys(["a"])
class Rig:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        while self.busy():
            self.a.open()
            while self.hot():
                self.a.close()
        return []
