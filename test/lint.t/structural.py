# One class per structural defect: SY001-SY005 and SY007 positives
# (SY006 is exercised by dead_op.py and suppress.py).
@sys
class Duplicate:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_initial_final
    def go(self):
        return []

    @op_final
    def go(self):
        return []


@sys
class NoInitial:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_final
    def stop(self):
        return []


@sys
class NoFinal:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_initial
    def start(self):
        return ["start"]


@sys
class UnknownNext:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_initial_final
    def go(self):
        return ["missing"]


@sys
class TerminalNotFinal:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_initial
    def go(self):
        return []

    @op_final
    def stop(self):
        return ["go"]


@sys
class FinalUnreachable:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_initial
    def spin(self):
        return ["spin"]

    @op_final
    def stop(self):
        return ["spin"]
