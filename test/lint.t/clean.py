# A correct composite: every rule's negative case. The valves are driven
# through their full protocol, the claim is contingent (neither vacuous,
# unsatisfiable, nor implied by the other), both declared subsystems are
# used, and no modeled field escapes the @sys declaration.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        return ["open"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]


@claim("(!a.open) W b.open")
@sys(["a", "b"])
class Sector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def drain(self):
        self.b.test()
        self.b.open()
        self.a.test()
        self.a.open()
        self.a.close()
        self.b.close()
        return []
