# SY010 positive: the malformed header drops this class, and the file exits 2.
@sys
class Broken
    def __init__(self):
        self.pin = Pin(1, OUT)
