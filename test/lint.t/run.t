Static-analysis golden tests: every rule code gets a positive case here,
and clean.py — a correct composite driven through its full protocol — is
the shared negative: none of the rules fire on it.

  $ shelley lint clean.py
  no findings in 1 file

The structural rules (SY001–SY007) are the same seven checks 'shelley
check' reports, now with stable codes. One class per defect:

  $ shelley lint structural.py
  structural.py:13: error SY001 [Duplicate]: duplicate operation name 'go'
  structural.py:18: error SY002 [NoInitial]: no operation is annotated @op_initial (or @op_initial_final): the class can never be used
  structural.py:23: warning SY006 [NoInitial]: operation 'stop' is unreachable from every initial operation
  structural.py:28: error SY003 [NoFinal]: no operation is annotated @op_final (or @op_initial_final): no usage of the class can ever terminate
  structural.py:33: warning SY007 [NoFinal]: no final operation is reachable after 'start': objects get stuck there
  structural.py:44: error SY004 [UnknownNext]: operation 'go' returns unknown operation 'missing' (declared operations: go)
  structural.py:53: warning SY007 [TerminalNotFinal]: no final operation is reachable after 'go': objects get stuck there
  structural.py:53: warning SY101 [TerminalNotFinal]: operation 'go' occurs in no accepted usage of TerminalNotFinal: no caller can legally exercise it
  structural.py:54: error SY005 [TerminalNotFinal]: operation 'go' has a terminal exit (returns []) but is not @op_final: callers reaching it can neither continue nor stop
  structural.py:57: warning SY006 [TerminalNotFinal]: operation 'stop' is unreachable from every initial operation
  structural.py:57: warning SY101 [TerminalNotFinal]: operation 'stop' occurs in no accepted usage of TerminalNotFinal: no caller can legally exercise it
  structural.py:67: warning SY007 [FinalUnreachable]: no final operation is reachable after 'spin': objects get stuck there
  structural.py:67: warning SY101 [FinalUnreachable]: operation 'spin' occurs in no accepted usage of FinalUnreachable: no caller can legally exercise it
  structural.py:71: warning SY006 [FinalUnreachable]: operation 'stop' is unreachable from every initial operation
  structural.py:71: warning SY101 [FinalUnreachable]: operation 'stop' occurs in no accepted usage of FinalUnreachable: no caller can legally exercise it
  15 findings (5 errors, 10 warnings) in 1 file
  [1]

Dead operation (SY101): no accepted usage word contains 'drain', so no
caller can ever legally exercise it (the graph-level SY006 agrees):

  $ shelley lint dead_op.py
  dead_op.py:14: warning SY006 [Tank]: operation 'drain' is unreachable from every initial operation
  dead_op.py:14: warning SY101 [Tank]: operation 'drain' occurs in no accepted usage of Tank: no caller can legally exercise it
  2 findings (2 warnings) in 1 file

A claim over a class that performs no subsystem calls, and a tautology,
are both vacuous (SY102):

  $ shelley lint vacuous.py
  vacuous.py:16: warning SY102 [Controller]: claim 'F a.blink' is vacuous: Controller performs no subsystem calls, so the claim is checked only against the empty trace
  vacuous.py:29: warning SY102 [Panel]: claim 'a.blink || !a.blink' is vacuous: it holds over every trace (a tautology over the class's events)
  2 findings (2 warnings) in 1 file

An unsatisfiable claim (SY103) can only ever fail, so it is an error:

  $ shelley lint unsat.py
  unsat.py:16: error SY103 [Rig]: claim 'F (a.open && a.close)' is unsatisfiable: no trace at all can satisfy it, so verification can only fail
  1 finding (1 error) in 1 file
  [1]

Mutually redundant claims (SY104):

  $ shelley lint redundant.py
  redundant.py:17: info SY104 [Rig]: claim 'F a.open' is redundant: the usage language and the remaining claims already imply it
  redundant.py:17: info SY104 [Rig]: claim 'F a.open' is redundant: the usage language and the remaining claims already imply it
  2 findings (2 infos) in 1 file

A subsystem declared but never driven (SY105), and a call on a modeled
field that escapes the @sys declaration (SY106):

  $ shelley lint unused_sub.py
  unused_sub.py:14: warning SY105 [Rig]: declared subsystem 'b' is never called by any operation of Rig
  1 finding (1 warning) in 1 file

  $ shelley lint escaping.py
  escaping.py:23: warning SY106 [Rig]: call 'b.open' escapes verification: field 'b' holds modeled class Valve but is not declared in @sys([...])
  1 finding (1 warning) in 1 file

Calls after an unconditional return can never execute (SY107):

  $ shelley lint deadcode.py
  deadcode.py:20: warning SY107 [Rig]: operation 'cycle' performs calls after a point where every path has returned: they can never execute
  1 finding (1 warning) in 1 file

Behavior blowup (SY108) is relative to the configured thresholds — the
nested loop is fine by default and flagged when the star-height budget is
lowered:

  $ shelley lint blowup.py
  no findings in 1 file

  $ shelley lint --max-star-height 1 blowup.py
  blowup.py:26: info SY108 [Rig]: behavior of 'cycle' nests 2 loops (star-height threshold 1): downstream automaton constructions may blow up
  1 finding (1 info) in 1 file

Suppressions: a standalone '# shelley: disable=…' comment governs the next
line, an end-of-line one its own line; silenced findings are counted, and
an unknown code in a suppression is itself a finding (SY012):

  $ shelley lint suppress.py
  suppress.py:21: warning SY006 [Tank]: operation 'spare' is unreachable from every initial operation
  suppress.py:21: warning SY012: suppression comment names unknown rule code 'SY999'
  suppress.py:21: warning SY101 [Tank]: operation 'spare' occurs in no accepted usage of Tank: no caller can legally exercise it
  3 findings (3 warnings) in 1 file, 2 suppressed

Multiple files are reported in input order, whatever the -j level:

  $ shelley lint dead_op.py clean.py unsat.py
  dead_op.py:14: warning SY006 [Tank]: operation 'drain' is unreachable from every initial operation
  dead_op.py:14: warning SY101 [Tank]: operation 'drain' occurs in no accepted usage of Tank: no caller can legally exercise it
  unsat.py:16: error SY103 [Rig]: claim 'F (a.open && a.close)' is unsatisfiable: no trace at all can satisfy it, so verification can only fail
  3 findings (1 error, 2 warnings) in 3 files
  [1]

  $ shelley lint -j 3 dead_op.py clean.py unsat.py
  dead_op.py:14: warning SY006 [Tank]: operation 'drain' is unreachable from every initial operation
  dead_op.py:14: warning SY101 [Tank]: operation 'drain' occurs in no accepted usage of Tank: no caller can legally exercise it
  unsat.py:16: error SY103 [Rig]: claim 'F (a.open && a.close)' is unsatisfiable: no trace at all can satisfy it, so verification can only fail
  3 findings (1 error, 2 warnings) in 3 files
  [1]

A file that cannot be parsed is SY010 and exit 2; one that cannot be read
is SY011 and exit 2:

  $ shelley lint broken.py
  broken.py:3: error SY010: syntax error (col 12): expected ':' but found end of line
  1 finding (1 error) in 1 file
  [2]

  $ shelley lint no_such_file.py
  no_such_file.py: error SY011: cannot read file: no_such_file.py: No such file or directory
  1 finding (1 error) in 1 file
  [2]

A semantic rule that exhausts its fuel budget reports SY090 for the
affected class and rule (exit 3) while every other rule and file still
runs — dead_op.py's small automata fit in the same budget that clean.py's
composite blows:

  $ shelley lint --max-states 2 clean.py dead_op.py
  clean.py: error SY090 [Valve]: lint rule SY101 (dead-operation) exceeded its budget: determinization states (limit 2)
  clean.py: error SY090 [Sector]: lint rule SY101 (dead-operation) exceeded its budget: determinization states (limit 2)
  clean.py: error SY090 [Sector]: lint rule SY102 (vacuous-claim) exceeded its budget: progression obligations (limit 2)
  clean.py: error SY090 [Sector]: lint rule SY103 (unsatisfiable-claim) exceeded its budget: tableau states (limit 2)
  dead_op.py:14: warning SY006 [Tank]: operation 'drain' is unreachable from every initial operation
  dead_op.py:14: warning SY101 [Tank]: operation 'drain' occurs in no accepted usage of Tank: no caller can legally exercise it
  6 findings (4 errors, 2 warnings) in 2 files
  [3]

The JSON envelope carries findings and suppressions per file plus a
summary:

  $ shelley lint --format json suppress.py | sed -n '1,3p;33,60p'
  {
    "format": "shelley.lint/1",
    "files": [
            "rule": "SY006",
            "name": "unreachable-operation",
            "severity": "warning",
            "line": 16,
            "class": "Tank",
            "message": "operation 'drain' is unreachable from every initial operation"
          },
          {
            "rule": "SY101",
            "name": "dead-operation",
            "severity": "warning",
            "line": 16,
            "class": "Tank",
            "message": "operation 'drain' occurs in no accepted usage of Tank: no caller can legally exercise it"
          }
        ]
      }
    ],
    "summary": {
      "files": 1,
      "findings": 3,
      "errors": 0,
      "warnings": 3,
      "infos": 0,
      "suppressed": 2
    }
  }

SARIF 2.1.0 output: the full rule registry under tool.driver.rules, one
result per finding with level and physical location, suppressed findings
marked inSource rather than dropped:

  $ shelley lint --format sarif suppress.py | grep -E '"(version|ruleId|level|startLine|uri|kind)":' | sed 's/,$//'
    "version": "2.1.0"
                  "level": "error"
                  "level": "error"
                  "level": "error"
                  "level": "error"
                  "level": "error"
                  "level": "warning"
                  "level": "warning"
                  "level": "error"
                  "level": "error"
                  "level": "warning"
                  "level": "error"
                  "level": "error"
                  "level": "error"
                  "level": "warning"
                  "level": "warning"
                  "level": "error"
                  "level": "note"
                  "level": "warning"
                  "level": "warning"
                  "level": "warning"
                  "level": "note"
            "ruleId": "SY006"
            "level": "warning"
                    "uri": "suppress.py"
                    "startLine": 21
            "ruleId": "SY012"
            "level": "warning"
                    "uri": "suppress.py"
                    "startLine": 21
            "ruleId": "SY101"
            "level": "warning"
                    "uri": "suppress.py"
                    "startLine": 21
            "ruleId": "SY006"
            "level": "warning"
                    "uri": "suppress.py"
                    "startLine": 16
                "kind": "inSource"
            "ruleId": "SY101"
            "level": "warning"
                    "uri": "suppress.py"
                    "startLine": 16
                "kind": "inSource"

  $ shelley lint --format yaml clean.py
  unknown lint format 'yaml' (expected text, json or sarif)
  [2]

'check --lint' appends only the semantic findings to the classic report
blocks — with the flag off the output is untouched:

  $ shelley check dead_op.py
  OK: specification verified

  $ shelley check --lint dead_op.py
  == dead_op.py ==
  dead_op.py:14: warning SY101 [Tank]: operation 'drain' occurs in no accepted usage of Tank: no caller can legally exercise it
  
  OK: specification verified

  $ shelley check --lint unsat.py
  == unsat.py ==
  Error in specification: FAIL TO MEET REQUIREMENT
  Formula: F (a.open && a.close)
  Counter example: 
  
  unsat.py:16: error SY103 [Rig]: claim 'F (a.open && a.close)' is unsatisfiable: no trace at all can satisfy it, so verification can only fail
  
  [1]
