# SY102 positive: the class performs no subsystem calls at all, so its
# claim is only ever checked against the empty trace.
@sys
class Led:
    def __init__(self):
        self.pin = Pin(2, OUT)

    @op_initial_final
    def blink(self):
        self.pin.on()
        return []


@claim("F a.blink")
@sys
class Controller:
    def __init__(self):
        self.mode = 0

    @op_initial_final
    def run(self):
        return []


# SY102's other face: the class does call its subsystem, but the claim holds
# over every trace whatsoever (a tautology), so it constrains nothing.
@claim("a.blink || !a.blink")
@sys(["a"])
class Panel:
    def __init__(self):
        self.a = Led()

    @op_initial_final
    def flash(self):
        self.a.blink()
        return []
