# SY101 positive: 'drain' is declared but no accepted usage contains it —
# nothing returns to it from the initial operation.
@sys
class Tank:
    def __init__(self):
        self.pump = Pin(1, OUT)

    @op_initial_final
    def fill(self):
        self.pump.on()
        return ["fill"]

    @op_final
    def drain(self):
        self.pump.off()
        return []
