# SY106 positive: 'b' holds a modeled Valve and is called, but is missing
# from @sys(["a"]) — its calls silently escape verification.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial_final
    def open(self):
        self.control.on()
        return ["open"]


@sys(["a"])
class Rig:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def cycle(self):
        self.a.open()
        self.b.open()
        return []
