# SY103 positive: one trace step is one event, so a.open and a.close can
# never hold at the same instant -- no trace at all satisfies the claim.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial_final
    def open(self):
        self.control.on()
        return ["open"]


@claim("F (a.open && a.close)")
@sys(["a"])
class Rig:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        self.a.open()
        return []
