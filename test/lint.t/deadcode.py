# SY107 positive: the subsystem call after the unconditional return can
# never execute.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial_final
    def open(self):
        self.control.on()
        return ["open"]


@sys(["a"])
class Rig:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        self.a.open()
        return []
        self.a.open()
