# SY105 positive: 'b' is declared in @sys but no operation ever calls it.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial_final
    def open(self):
        self.control.on()
        return ["open"]


@sys(["a", "b"])
class Rig:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def cycle(self):
        self.a.open()
        return []
