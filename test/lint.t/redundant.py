# SY104 positive: the two claims are identical, so each is implied by the
# usage language together with the other.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial_final
    def open(self):
        self.control.on()
        return ["open"]


@claim("F a.open")
@claim("F a.open")
@sys(["a"])
class Rig:
    def __init__(self):
        self.a = Valve()

    @op_initial_final
    def cycle(self):
        self.a.open()
        return []
