# Suppression demo: the standalone comment silences the SY006/SY101 pair on
# the unreachable 'drain'; 'spare' is equally unreachable but its trailing
# comment names an unknown code, so SY012 fires and its findings stay live.
@sys
class Tank:
    def __init__(self):
        self.pump = Pin(1, OUT)

    @op_initial_final
    def fill(self):
        self.pump.on()
        return ["fill"]

    @op_final
    # shelley: disable=SY006,SY101
    def drain(self):
        self.pump.off()
        return []

    @op_final
    def spare(self):  # shelley: disable=SY999
        self.pump.off()
        return []
