(* The result cache, proven correct differentially: for generated corpora of
   MicroPython files, a cold cached run, a warm (all-hit) run and a mixed
   hit/miss run must all reproduce the uncached run's bytes and exit codes
   exactly — at -j 1 and at -j 4, for both the check and the lint engines.
   Plus the blob store's own contracts (round-trip, miss classification) and
   the key-composition rules that decide what invalidates what. *)

open Testutil

(* --- Corpus generation -------------------------------------------------------

   A corpus file is either one of the paper's listings (valve verifies
   silently, bad_sector fails its claim — both cachable verdicts), a
   syntactically broken file (exercises the Syntax_error path through the
   cache), or a generated IR program rendered back to an annotated
   MicroPython composite driving a Valve — so random control-flow shapes
   flow through parsing, lowering, inference and the cache. *)

type spec =
  | Valve
  | Bad
  | Broken
  | Gen of Prog.t

(* The paper's listings, pulled from samples/ (declared as deps in
   test/dune, so they exist in the sandbox). `dune runtest` runs with the
   test directory as cwd; `dune exec test/test_cache.exe` from the root. *)
let read_sample name =
  let path =
    List.find Sys.file_exists
      [ Filename.concat "../samples" name; Filename.concat "samples" name ]
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let valve_source = read_sample "valve.py"
let bad_source = read_sample "bad_sector.py"
let broken_source = "@sys\nclass Broken:\n    def oops(self:\n        return [\n"

let driver_alphabet = List.map sym [ "test"; "open"; "close"; "clean" ]

(* Render a [Prog.t] as the body of one composite operation. Every leaf
   emits at least one line, so blocks are never empty; conditions are erased
   by lowering, so any pin read works. *)
let render_prog p =
  let buf = Buffer.create 256 in
  let pad n = String.make n ' ' in
  let rec stmt indent p =
    match (p : Prog.t) with
    | Call f -> Buffer.add_string buf (pad indent ^ "self.a." ^ Symbol.name f ^ "()\n")
    | Skip -> Buffer.add_string buf (pad indent ^ "print(\"skip\")\n")
    | Return -> Buffer.add_string buf (pad indent ^ "return []\n")
    | Seq (a, b) ->
      stmt indent a;
      stmt indent b
    | If (a, b) ->
      Buffer.add_string buf (pad indent ^ "if self.flag.value():\n");
      stmt (indent + 4) a;
      Buffer.add_string buf (pad indent ^ "else:\n");
      stmt (indent + 4) b
    | Loop a ->
      Buffer.add_string buf (pad indent ^ "while self.flag.value():\n");
      stmt (indent + 4) a
  in
  stmt 8 p;
  Buffer.contents buf

let gen_source p =
  valve_source
  ^ Printf.sprintf
      {|

@sys(["a"])
class Driver:
    def __init__(self):
        self.a = Valve()
        self.flag = Pin(25, IN)

    @op_initial_final
    def run(self):
%s        return []
|}
      (render_prog p)

let source_of = function
  | Valve -> valve_source
  | Bad -> bad_source
  | Broken -> broken_source
  | Gen p -> gen_source p

let spec_name = function
  | Valve -> "valve"
  | Bad -> "bad"
  | Broken -> "broken"
  | Gen p -> "gen " ^ Prog.to_string p

let spec_gen : spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  frequency
    [
      (1, return Valve);
      (1, return Bad);
      (1, return Broken);
      (3, map (fun p -> Gen p) (prog_gen_over driver_alphabet));
    ]

let corpus_gen = QCheck2.Gen.(list_size (int_range 1 4) spec_gen)

(* Shrink a corpus by dropping files, replacing templates with the silent
   one, and shrinking generated programs via the shared IR shrinker. *)
let spec_shrink = function
  | Valve -> Seq.empty
  | Bad | Broken -> Seq.return Valve
  | Gen p -> Seq.map (fun p' -> Gen p') (prog_shrink p)

let rec corpus_shrink = function
  | [] -> Seq.empty
  | x :: rest ->
    Seq.append
      (Seq.return rest)
      (Seq.append
         (Seq.map (fun x' -> x' :: rest) (spec_shrink x))
         (Seq.map (fun rest' -> x :: rest') (corpus_shrink rest)))

let corpus_arb =
  arbitrary
    ~print:(fun specs -> String.concat " | " (List.map spec_name specs))
    ~shrink:corpus_shrink corpus_gen

(* --- Temp plumbing ----------------------------------------------------------- *)

let counter = ref 0

let with_corpus specs f =
  incr counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "shelley_cachetest_%d_%d" (Unix.getpid ()) !counter)
  in
  Unix.mkdir dir 0o755;
  let files =
    List.mapi
      (fun i spec ->
        let path = Filename.concat dir (Printf.sprintf "unit_%d.py" i) in
        let oc = open_out_bin path in
        output_string oc (source_of spec);
        close_out oc;
        path)
      specs
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir files)

let fresh_cache dir name =
  let path = Filename.concat dir name in
  match Cache.open_dir path with
  | Ok c -> c
  | Error msg -> Alcotest.failf "cannot open cache at %s: %s" path msg

(* --- The differential property ----------------------------------------------- *)

let check_fingerprint ?cache ~jobs files =
  let verdicts = Checker.check_files ?cache ~jobs files in
  ( String.concat "" (List.map (fun v -> v.Checker.output) verdicts),
    List.map (fun v -> v.Checker.code) verdicts )

let lint_fingerprint ?cache ~jobs files =
  Lint_render.text (Checker.lint_files ?cache ~jobs files)

(* Every cached regime must reproduce [baseline]: cold (all misses + store),
   warm (all hits), warm parallel, and mixed (only a prefix primed, so hits
   and misses interleave inside one run). *)
let differential ~fingerprint ~label dir files baseline =
  let expect regime got =
    if got <> baseline then
      Alcotest.failf "%s: %s run diverged from the uncached run" label regime
  in
  let cache = fresh_cache dir (label ^ "_cache") in
  expect "cold -j 1" (fingerprint ~cache ~jobs:1 files);
  expect "warm -j 1" (fingerprint ~cache ~jobs:1 files);
  expect "warm -j 4" (fingerprint ~cache ~jobs:4 files);
  let mixed = fresh_cache dir (label ^ "_mixed") in
  let prefix = List.filteri (fun i _ -> i < List.length files / 2) files in
  if prefix <> [] then ignore (fingerprint ~cache:mixed ~jobs:1 prefix);
  expect "mixed -j 4" (fingerprint ~cache:mixed ~jobs:4 files)

let prop_differential =
  qtest_arb "cold = warm = mixed, check and lint, -j 1 and -j 4" ~count:20 corpus_arb
    (fun specs ->
      with_corpus specs (fun dir files ->
          let check_base = check_fingerprint ~jobs:1 files in
          differential
            ~fingerprint:(fun ~cache ~jobs files ->
              check_fingerprint ~cache ~jobs files)
            ~label:"check" dir files check_base;
          let lint_base = lint_fingerprint ~jobs:1 files in
          differential
            ~fingerprint:(fun ~cache ~jobs files -> lint_fingerprint ~cache ~jobs files)
            ~label:"lint" dir files lint_base);
      true)

(* The uncached parallel run was already proven byte-identical to sequential
   by test_exec; here the same must hold when a cache joins in, with workers
   racing to store. *)
let prop_parallel_cold =
  qtest_arb "racing cold stores keep -j 4 identical to -j 1" ~count:15 corpus_arb
    (fun specs ->
      with_corpus specs (fun dir files ->
          let base = check_fingerprint ~jobs:1 files in
          let cache = fresh_cache dir "race_cache" in
          let cold4 = check_fingerprint ~cache ~jobs:4 files in
          if cold4 <> base then Alcotest.fail "cold -j 4 diverged";
          let warm1 = check_fingerprint ~cache ~jobs:1 files in
          if warm1 <> base then Alcotest.fail "warm after racing stores diverged");
      true)

(* --- Blob-store contracts ------------------------------------------------------ *)

let with_cache f =
  with_corpus [] (fun dir _ -> f (fresh_cache dir "c"))

let test_roundtrip () =
  with_cache (fun c ->
      let key = Cache.key [ "a"; "b" ] in
      Alcotest.(check bool) "initially absent" true (Cache.find c key = None);
      Cache.store c key (42, "hello");
      Alcotest.(check (option (pair int string)))
        "round-trips" (Some (42, "hello"))
        (Cache.find c key);
      Alcotest.(check bool)
        "other keys unaffected" true
        (Cache.find c (Cache.key [ "ab" ]) = None))

let test_key_boundaries () =
  (* Length-prefixing means part boundaries cannot be forged. *)
  Alcotest.(check bool)
    "[ab] <> [a;b]" true
    (Cache.key [ "ab" ] <> Cache.key [ "a"; "b" ]);
  Alcotest.(check bool)
    "[a;bc] <> [ab;c]" true
    (Cache.key [ "a"; "bc" ] <> Cache.key [ "ab"; "c" ])

let test_stats_counts_live () =
  with_cache (fun c ->
      Cache.store c (Cache.key [ "1" ]) 1;
      Cache.store c (Cache.key [ "2" ]) 2;
      let s = Cache.stats c in
      Alcotest.(check int) "live" 2 s.Cache.live_entries;
      Alcotest.(check int) "stale" 0 s.Cache.stale_entries;
      Alcotest.(check int) "corrupt" 0 s.Cache.corrupt_entries;
      Alcotest.(check int) "clear removes them" 2 (Cache.clear c);
      Alcotest.(check int) "empty after clear" 0 (Cache.stats c).Cache.live_entries)

(* --- Key-composition rules: what invalidates, what does not ------------------- *)

let src = "class C:\n    pass\n"
let key = Checker.check_cache_key ~path:"unit.py" src

let test_key_sensitivity () =
  let base = key in
  let differs label k = Alcotest.(check bool) (label ^ " changes the key") true (k <> base) in
  differs "source" (Checker.check_cache_key ~path:"unit.py" (src ^ "\n"));
  differs "path" (Checker.check_cache_key ~path:"other.py" src);
  differs "max_states"
    (Checker.check_cache_key
       ~limits:(Limits.make ~max_states:7 ())
       ~path:"unit.py" src);
  differs "fuel"
    (Checker.check_cache_key
       ~limits:(Limits.make ~max_configs:7 ())
       ~path:"unit.py" src);
  differs "warnings" (Checker.check_cache_key ~warnings:true ~path:"unit.py" src);
  differs "explain" (Checker.check_cache_key ~explain:true ~path:"unit.py" src);
  differs "lint" (Checker.check_cache_key ~lint:true ~path:"unit.py" src);
  differs "extra (--using digests)"
    (Checker.check_cache_key ~extra:[ "d41d8cd9" ] ~path:"unit.py" src)

let test_key_deadline_insensitive () =
  (* The wall-clock deadline may prevent a verdict but cannot change one, so
     results computed with and without --timeout share entries. *)
  Alcotest.(check string)
    "deadline not key material" key
    (Checker.check_cache_key ~limits:(Limits.make ~deadline:2.5 ()) ~path:"unit.py" src)

let test_lint_key_sensitivity () =
  let base = Checker.lint_cache_key ~path:"unit.py" src in
  let differs label k = Alcotest.(check bool) (label ^ " changes the key") true (k <> base) in
  differs "source" (Checker.lint_cache_key ~path:"unit.py" (src ^ "\n"));
  differs "path" (Checker.lint_cache_key ~path:"other.py" src);
  differs "max_behavior_size"
    (Checker.lint_cache_key
       ~thresholds:
         { Lint_semantic.default_thresholds with Lint_semantic.max_behavior_size = 1 }
       ~path:"unit.py" src);
  differs "max_star_height"
    (Checker.lint_cache_key
       ~thresholds:
         { Lint_semantic.default_thresholds with Lint_semantic.max_star_height = 1 }
       ~path:"unit.py" src);
  Alcotest.(check bool)
    "check and lint keys are disjoint" true
    (base <> Checker.check_cache_key ~path:"unit.py" src)

(* A verdict stored under a full budget must not be replayed after the
   budget shrinks (it could hide a Resource_limit verdict), and vice versa:
   end to end through check_files. *)
let check_fingerprint_limits ~cache ~limits files =
  let verdicts = Checker.check_files ~cache ~limits files in
  ( String.concat "" (List.map (fun v -> v.Checker.output) verdicts),
    List.map (fun v -> v.Checker.code) verdicts )

let test_budget_invalidation_end_to_end () =
  with_corpus [ Bad ] (fun dir files ->
      let cache = fresh_cache dir "budget" in
      let tight = Limits.make ~max_states:2 () in
      let full = check_fingerprint_limits ~cache ~limits:Limits.default files in
      let small = check_fingerprint_limits ~cache ~limits:tight files in
      Alcotest.(check bool) "tight budget not served the full-budget verdict" true
        (full <> small);
      let full' = check_fingerprint_limits ~cache ~limits:Limits.default files in
      let small' = check_fingerprint_limits ~cache ~limits:tight files in
      Alcotest.(check bool) "warm full matches cold full" true (full = full');
      Alcotest.(check bool) "warm tight matches cold tight" true (small = small'))

(* --- Counters ------------------------------------------------------------------- *)

let stable key =
  Option.value ~default:0 (List.assoc_opt key (Obs.stable_counters ()))

let test_hit_miss_counters () =
  with_corpus [ Valve; Bad ] (fun dir files ->
      let cache = fresh_cache dir "ctr" in
      Obs.enable ();
      ignore (check_fingerprint ~cache ~jobs:1 files);
      Alcotest.(check int) "cold: all misses" 2 (stable "cache.misses");
      Alcotest.(check int) "cold: no hits" 0 (stable "cache.hits");
      Obs.disable ();
      Obs.enable ();
      ignore (check_fingerprint ~cache ~jobs:1 files);
      Alcotest.(check int) "warm: all hits" 2 (stable "cache.hits");
      Alcotest.(check int) "warm: no misses" 0 (stable "cache.misses");
      Alcotest.(check bool) "warm: bytes flow back" true (stable "cache.bytes_read" > 0);
      Obs.disable ())

let () =
  Alcotest.run "cache"
    [
      ( "differential",
        [ prop_differential; prop_parallel_cold ] );
      ( "store",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "key boundaries" `Quick test_key_boundaries;
          Alcotest.test_case "stats and clear" `Quick test_stats_counts_live;
        ] );
      ( "keys",
        [
          Alcotest.test_case "check-key sensitivity" `Quick test_key_sensitivity;
          Alcotest.test_case "deadline insensitivity" `Quick test_key_deadline_insensitive;
          Alcotest.test_case "lint-key sensitivity" `Quick test_lint_key_sensitivity;
          Alcotest.test_case "budget invalidation end to end" `Quick
            test_budget_invalidation_end_to_end;
        ] );
      ( "counters",
        [ Alcotest.test_case "hits and misses tally" `Quick test_hit_miss_counters ] );
    ]
