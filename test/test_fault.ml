open Testutil

(* Fault-injection suite: malformed sources and adversarial automata inputs.
   The contract under test is the pipeline's, not any one check's — every
   input terminates with structured reports, and the only exceptions that
   may cross a module boundary are the typed ones ([Limits.Budget_exceeded],
   parser/lexer errors from the *strict* entry points). *)

(* --- Shared sources ---------------------------------------------------------- *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
|}

(* --- Malformed-source corpus -------------------------------------------------- *)

(* Each entry is (name, source). Sources are deliberately broken in distinct
   ways: lexical faults, header faults, member faults, stray top level. *)
let malformed_corpus =
  [
    ("unterminated string", "class C:\n    def m(self):\n        s = \"oops\n");
    ("inconsistent dedent", "class C:\n    def m(self):\n            x()\n       y()\n");
    ("broken def signature", "class C:\n    def broken(:\n        return []\n");
    ("missing class colon", "class C\n    def m(self):\n        return []\n");
    ("garbage characters", "class C:\n    def m(self):\n        $ ? !\n");
    ("truncated class", "class C:\n");
    ("nested def", "class C:\n    def m(self):\n        def helper():\n            pass\n");
    ("decorator without class", "@sys\nx = 1\n");
    ("top-level def", "@op\ndef loose():\n    return []\n");
    ("stray dedent garbage", "class C:\n    def m(self):\n        return []\n  stray\n");
    ("missing paren", "class C:\n    def m(self):\n        self.p.on(\n");
    ("bad match case", "class C:\n    def m(self):\n        match x:\n            case : pass\n");
    ("empty input", "");
    ("whitespace only", "\n\n   \n");
  ]

(* Rendering a report must never raise either — diagnostics that crash the
   reporter are as bad as the fault they describe. *)
let well_formed (r : Report.t) = String.length (Report.to_string r) >= 0

let test_corpus_never_raises () =
  List.iter
    (fun (name, source) ->
      match Pipeline.verify_source source with
      | result ->
        Alcotest.(check bool)
          (name ^ ": reports render") true
          (List.for_all well_formed result.Pipeline.reports)
      | exception exn ->
        Alcotest.failf "%s: verify_source raised %s" name (Printexc.to_string exn))
    malformed_corpus

let test_corpus_brokenness_is_reported () =
  (* Everything before "empty input" is genuinely broken and must produce at
     least one syntax diagnostic; the trailing well-formed entries must not. *)
  List.iter
    (fun (name, source) ->
      let result = Pipeline.verify_source source in
      let has_syntax = List.exists Report.is_syntax_error result.Pipeline.reports in
      let expect_broken = name <> "empty input" && name <> "whitespace only" in
      Alcotest.(check bool) (name ^ ": syntax diagnostic") expect_broken has_syntax)
    malformed_corpus

(* The acceptance scenario: one broken class and one valid class in the same
   file yields the valid class's model plus a syntax diagnostic. *)
let test_partial_file_keeps_good_class () =
  (* NB: the injected fault must not open a bracket ("def m(self:"), or the
     lexer's implicit line joining swallows the layout tokens of everything
     after it and the good class is lost with it. *)
  let source =
    "class Broken:\n    def m(self)\n        return []\n\n" ^ valve_source
  in
  let result = Pipeline.verify_source source in
  Alcotest.(check bool) "syntax diagnostic present" true
    (List.exists Report.is_syntax_error result.Pipeline.reports);
  Alcotest.(check bool) "Valve model survives" true
    (Option.is_some (Pipeline.find_model result "Valve"))

(* A broken *member* costs only that member: the class and its other
   operations survive. *)
let test_broken_member_keeps_other_methods () =
  let source =
    "@sys\n\
     class Dev:\n\
    \    @op_initial_final\n\
    \    def ok(self):\n\
    \        return []\n\
    \    @op\n\
    \    def broken(self:\n\
    \        return []\n"
  in
  let result = Pipeline.verify_source source in
  Alcotest.(check bool) "diagnostic recorded" true
    (List.exists Report.is_syntax_error result.Pipeline.reports);
  match Pipeline.find_model result "Dev" with
  | None -> Alcotest.fail "class Dev lost entirely"
  | Some model ->
    Alcotest.(check bool) "ok operation survives" true
      (Option.is_some (Model.find_op model "ok"))

(* --- Adversarial determinization --------------------------------------------- *)

(* (a+b)* a (a+b)^n needs 2^n DFA states: the subset construction must stop
   at the budget, not run away. *)
let blowup_regex n =
  let a = Regex.sym_of_name "a" and b = Regex.sym_of_name "b" in
  let ab = Regex.alt a b in
  let tail = List.init n (fun _ -> ab) in
  Regex.seq_list (Regex.star ab :: a :: tail)

let test_determinize_blowup_hits_budget () =
  let nfa = Glushkov.of_regex (blowup_regex 40) in
  let limits = Limits.make ~max_states:256 () in
  match Determinize.determinize ~limits nfa with
  | _ -> Alcotest.fail "2^40 states fit in a 256-state budget?"
  | exception Limits.Budget_exceeded { resource; limit } ->
    Alcotest.(check int) "reported limit" 256 limit;
    Alcotest.(check bool) "resource named" true (String.length resource > 0)

let test_determinize_small_instance_fits () =
  let nfa = Glushkov.of_regex (blowup_regex 4) in
  let dfa = Determinize.determinize ~limits:(Limits.make ~max_states:256 ()) nfa in
  Alcotest.(check bool) "within budget" true (Dfa.num_states dfa <= 256)

(* Satellite: out-of-alphabet queries are a diagnosable Invalid_argument,
   not an assertion failure. *)
let test_determinize_foreign_symbol () =
  let dfa = Determinize.determinize (Glushkov.of_regex (blowup_regex 2)) in
  match Dfa.next dfa (Dfa.start dfa) (Symbol.intern "zzz-not-in-alphabet") with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "names the symbol" true (contains msg "zzz-not-in-alphabet")

(* --- Adversarial language products -------------------------------------------- *)

let test_language_product_hits_budget () =
  let impl = Glushkov.of_regex (blowup_regex 40) in
  let spec = Glushkov.of_regex (blowup_regex 41) in
  let limits = Limits.make ~max_configs:500 () in
  match Language.inclusion_counterexample ~limits ~impl ~spec () with
  | _ -> Alcotest.fail "expected the product to exhaust its budget"
  | exception Limits.Budget_exceeded { limit; _ } ->
    Alcotest.(check int) "reported limit" 500 limit

(* Random regexes: determinization either finishes inside the budget or
   raises the typed exception — nothing else, and it always terminates. *)
let prop_determinize_total =
  qtest "determinize total under budget" ~count:150 default_regex_gen ~print:regex_print
    (fun r ->
      let limits = Limits.make ~max_states:200 () in
      match Determinize.determinize ~limits (Glushkov.of_regex r) with
      | dfa -> Dfa.num_states dfa <= 200 + 1
      | exception Limits.Budget_exceeded _ -> true)

(* --- Graceful degradation in the pipeline -------------------------------------- *)

let starved = Limits.make ~max_states:1 ~max_configs:1 ~max_regex_size:1 ()

(* A composite whose subsystem-usage check actually exercises the automata
   machinery — a subsystem-free class like Valve never spends any budget. *)
let sector_source =
  valve_source
  ^ "\n\
     @sys([\"a\"])\n\
     class Sector:\n\
    \    def __init__(self):\n\
    \        self.a = Valve()\n\
    \    @op_initial_final\n\
    \    def cycle(self):\n\
    \        match self.a.test():\n\
    \            case [\"open\"]:\n\
    \                self.a.open()\n\
    \                self.a.close()\n\
    \                return []\n\
    \            case [\"clean\"]:\n\
    \                self.a.clean()\n\
    \                return []\n"

let test_starved_pipeline_degrades () =
  match Pipeline.verify_source ~limits:starved sector_source with
  | exception exn ->
    Alcotest.failf "starved pipeline raised %s" (Printexc.to_string exn)
  | result ->
    Alcotest.(check bool) "models still extracted" true
      (Option.is_some (Pipeline.find_model result "Sector"));
    Alcotest.(check bool) "budget blowouts reported as Resource_limit" true
      (List.exists Report.is_resource_limit result.Pipeline.reports)

let test_generous_budget_verifies_sector () =
  (* The same source under the default budget passes outright — degradation
     is a property of the budget, not of the program. *)
  let result = Pipeline.verify_source sector_source in
  Alcotest.(check bool) "verified" true (Pipeline.verified result)

let test_starved_pipeline_runs_other_checks () =
  (* A structural error (unreachable op) must still be found even when the
     automata-backed checks blow their budget. *)
  let source =
    "@sys\n\
     class Lonely:\n\
    \    @op_initial_final\n\
    \    def go(self):\n\
    \        return []\n\
    \    @op\n\
    \    def orphan(self):\n\
    \        return []\n"
  in
  let result = Pipeline.verify_source ~limits:starved source in
  let structural =
    List.exists
      (function
        | Report.Structural _ -> true
        | _ -> false)
      result.Pipeline.reports
  in
  Alcotest.(check bool) "validate still reports" true structural

(* Fuzz: arbitrary bytes through the tolerant pipeline. The budget is starved
   so even adversarial accidental blowups stay cheap. *)
let fuzz_gen = QCheck2.Gen.(string_size ~gen:printable (int_range 0 300))

let prop_pipeline_total_on_garbage =
  qtest "verify_source total on garbage" ~count:300 fuzz_gen
    ~print:(fun s -> String.escaped s)
    (fun source ->
      let result = Pipeline.verify_source ~limits:starved source in
      List.for_all well_formed result.Pipeline.reports)

(* Mutation fuzz: chop the valve source at a random point and splice a random
   printable character in — close-to-valid inputs exercise recovery paths the
   pure-garbage fuzzer rarely reaches. *)
let mutation_gen =
  QCheck2.Gen.(
    pair (int_range 0 (String.length valve_source - 1)) printable)

let prop_pipeline_total_on_mutations =
  qtest "verify_source total on mutations" ~count:300 mutation_gen
    ~print:(fun (i, c) -> Printf.sprintf "cut at %d, insert %C" i c)
    (fun (i, c) ->
      let source =
        String.sub valve_source 0 i
        ^ String.make 1 c
        ^ String.sub valve_source i (String.length valve_source - i)
      in
      let result = Pipeline.verify_source ~limits:starved source in
      List.for_all well_formed result.Pipeline.reports)

(* --- Cache corruption ----------------------------------------------------------

   Every way an entry can rot on disk must classify as a miss (recompute),
   never a crash and never a wrong value — and each mode must tally its own
   counter so a rotting cache is visible in --stats. *)

let with_temp_cache f =
  let dir = Filename.temp_file "shelley_fault_cache" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      try Unix.rmdir path with Unix.Unix_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()
  in
  Fun.protect
    ~finally:(fun () -> rm dir)
    (fun () ->
      match Cache.open_dir (Filename.concat dir "c") with
      | Ok c -> f c
      | Error msg -> Alcotest.fail msg)

(* The on-disk layout pinned by cache.ml: DIR/<2-hex fanout>/<key>.entry. *)
let entry_path c key =
  Filename.concat (Filename.concat (Cache.dir c) (String.sub key 0 2)) (key ^ ".entry")

let overwrite path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let stable k = Option.value ~default:0 (List.assoc_opt k (Obs.stable_counters ()))

let observing f =
  Obs.enable ();
  Fun.protect ~finally:Obs.disable f

let test_truncated_entry_is_miss () =
  with_temp_cache (fun c ->
      let key = Cache.key [ "truncation" ] in
      Cache.store c key (1, "payload", [ 2; 3 ]);
      let path = entry_path c key in
      let len = (Unix.stat path).Unix.st_size in
      Unix.truncate path (len - 1);
      observing (fun () ->
          Alcotest.(check bool)
            "truncated payload is a miss" true
            ((Cache.find c key : (int * string * int list) option) = None);
          Alcotest.(check int) "counted as corrupt" 1 (stable "cache.corrupt_entries"));
      (* Cutting above the checksum line leaves no payload at all. *)
      Cache.store c key (1, "payload", [ 2; 3 ]);
      Unix.truncate path (String.length "shelley-cache 1");
      observing (fun () ->
          Alcotest.(check bool)
            "headerless stub is a miss" true
            ((Cache.find c key : (int * string * int list) option) = None));
      (* The slot is still usable: a later store recomputes and wins. *)
      Cache.store c key (9, "again", []);
      Alcotest.(check bool)
        "recompute re-stores over the wreck" true
        (Cache.find c key = Some (9, "again", ([] : int list))))

let test_wrong_version_is_evicted () =
  with_temp_cache (fun c ->
      let key = Cache.key [ "stale" ] in
      Cache.store c key 7;
      let path = entry_path c key in
      overwrite path "shelley-cache 999\nsomething\npayload";
      observing (fun () ->
          Alcotest.(check bool)
            "stale version is a miss" true
            ((Cache.find c key : int option) = None);
          Alcotest.(check int) "counted as stale" 1 (stable "cache.stale_evictions");
          Alcotest.(check int) "not counted as corrupt" 0 (stable "cache.corrupt_entries"));
      Alcotest.(check bool) "evicted on contact" false (Sys.file_exists path))

let test_undecodable_blob_is_miss () =
  with_temp_cache (fun c ->
      let key = Cache.key [ "garbage" ] in
      Cache.store c key 7;
      let path = entry_path c key in
      (* Valid header, valid checksum — over bytes Marshal cannot decode. The
         checksum passes, so this exercises the last line of defense. *)
      let payload = "certainly not a marshalled value" in
      overwrite path
        (Printf.sprintf "shelley-cache 1\n%s\n%s"
           (Digest.to_hex (Digest.string payload))
           payload);
      observing (fun () ->
          Alcotest.(check bool)
            "undecodable blob is a miss" true
            ((Cache.find c key : int option) = None);
          Alcotest.(check int) "counted as corrupt" 1 (stable "cache.corrupt_entries")))

let test_open_dir_on_regular_file_degrades () =
  let file = Filename.temp_file "shelley_fault_cache_file" "" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      match Cache.open_dir file with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "open_dir accepted a regular file")

let test_read_only_dir_store_is_counted () =
  (* chmod does not bind root, so this scenario is untestable there (CI
     containers often run as root; the cram suite covers the degradation
     path for them via a file-as-directory cache). *)
  if Unix.geteuid () = 0 then ()
  else
    with_temp_cache (fun c ->
        Unix.chmod (Cache.dir c) 0o555;
        Fun.protect
          ~finally:(fun () -> Unix.chmod (Cache.dir c) 0o755)
          (fun () ->
            let key = Cache.key [ "readonly" ] in
            observing (fun () ->
                Cache.store c key 7;
                Alcotest.(check int)
                  "failure counted" 1
                  (Option.value ~default:0
                     (List.assoc_opt "cache.store_failures" (Obs.counters ())));
                Alcotest.(check bool)
                  "nothing stored" true
                  ((Cache.find c key : int option) = None))))

(* --- Supervisor-level fault injection -------------------------------------------

   The pool's own failure modes, driven through the same SHELLEY_FAULT seam
   as the checker faults: a corrupt result frame, a worker that wedges after
   a batch, and fork itself failing. The contract in every case is the
   supervisor's — the fault is classified against the one task it belongs
   to and nothing else in the run is corrupted. *)

let sup_config ?(jobs = 1) ?(max_restarts = 3) () =
  Supervisor.config ~jobs ~batch_size:2 ~max_restarts ~backoff_base:0.005
    ~backoff_cap:0.05 ~heartbeat_interval:0.3 ~grace:0.1 ()

let with_fault spec f =
  Supervisor.fault_injection := true;
  Unix.putenv "SHELLEY_FAULT" spec;
  Fun.protect
    ~finally:(fun () ->
      Supervisor.fault_injection := false;
      Unix.putenv "SHELLEY_FAULT" "")
    f

let with_sup_pool ?jobs ?max_restarts f body =
  let pool =
    Supervisor.create ~label:string_of_int (sup_config ?jobs ?max_restarts ()) f
  in
  Fun.protect ~finally:(fun () -> Supervisor.shutdown pool) (fun () -> body pool)

let test_garbage_frame_condemns_one_task () =
  (* The worker computes task 2's result but writes a corrupt frame in its
     place: that task alone is charged, the worker is condemned and the rest
     of the run completes on a fresh one. *)
  with_fault "garbage:2" @@ fun () ->
  with_sup_pool (fun n -> n * 10) @@ fun pool ->
  match Supervisor.map pool [ 1; 2; 3; 4 ] with
  | [ Supervisor.Done 10; Crashed { reason; attempts = 1 }; Done 30; Done 40 ] ->
    Alcotest.(check string) "classified as protocol corruption"
      "garbage frame on result pipe" reason;
    Alcotest.(check bool) "condemned worker restarted" true
      ((Supervisor.stats pool).Supervisor.restarts >= 1)
  | outcomes -> Alcotest.failf "unexpected outcomes (%d)" (List.length outcomes)

let test_wedged_worker_detected_and_replaced () =
  (* After finishing the batch that contains task 2 the worker stops reading
     its job pipe and ignores heartbeats. The supervisor must notice the
     missing dispatch ack, re-queue the unstarted batch untouched and finish
     the run on a replacement — no task is lost or miscounted. *)
  with_fault "wedge:2" @@ fun () ->
  with_sup_pool (fun n -> n * 10) @@ fun pool ->
  let expected = List.map (fun n -> Supervisor.Done (n * 10)) [ 1; 2; 3; 4; 5; 6 ] in
  let got = Supervisor.map pool [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check bool) "all tasks completed despite the wedge" true (got = expected);
  let st = Supervisor.stats pool in
  Alcotest.(check bool) "heartbeat miss detected" true (st.Supervisor.heartbeat_misses >= 1);
  Alcotest.(check bool) "wedged worker replaced" true (st.Supervisor.restarts >= 1)

let test_fork_failure_degrades_to_inline () =
  (* Every fork attempt fails; once each slot is written off the pool must
     fall back to in-process execution — the run still completes, correctly,
     with the degradation visible in the counters. *)
  with_fault "forkfail:99" @@ fun () ->
  with_sup_pool ~jobs:2 ~max_restarts:2 (fun n -> n + 1) @@ fun pool ->
  match Supervisor.map pool [ 1; 2; 3 ] with
  | [ Supervisor.Done 2; Done 3; Done 4 ] ->
    let st = Supervisor.stats pool in
    Alcotest.(check bool) "fork failures counted" true (st.Supervisor.fork_failures >= 1);
    Alcotest.(check int) "tasks ran in-process" 3 st.Supervisor.inline_tasks;
    Alcotest.(check int) "no workers live" 0 st.Supervisor.live_workers
  | outcomes -> Alcotest.failf "unexpected outcomes (%d)" (List.length outcomes)

(* The acceptance scenario at the checker level: SIGKILL-ing a worker mid-run
   yields exactly one [Worker_crashed] unit; every other unit's block and
   code are byte-identical to an uninjected run. *)
let crash_corpus =
  lazy
    (let dir = Filename.temp_file "shelley_fault_sup" "" in
     Sys.remove dir;
     Unix.mkdir dir 0o700;
     List.map
       (fun name ->
         let path = Filename.concat dir name in
         let oc = open_out_bin path in
         output_string oc valve_source;
         close_out oc;
         path)
       [ "v1.py"; "v2.py"; "v3.py"; "v4.py" ])

let test_worker_crash_leaves_other_units_byte_identical () =
  let paths = Lazy.force crash_corpus in
  let clean = Checker.check_files ~jobs:2 paths in
  let faulted =
    with_fault "crash:v2.py" @@ fun () -> Checker.check_files ~jobs:2 paths
  in
  List.iter2
    (fun (c : Checker.verdict) (f : Checker.verdict) ->
      if Filename.basename f.Checker.path = "v2.py" then begin
        Alcotest.(check int) "crashed unit maps to 3" 3 f.Checker.code;
        Alcotest.(check bool) "structured crash block" true
          (contains f.Checker.output "WORKER CRASHED");
        Alcotest.(check bool) "signal named" true
          (contains f.Checker.output "SIGKILL")
      end
      else begin
        Alcotest.(check string)
          (Filename.basename f.Checker.path ^ ": block byte-identical")
          c.Checker.output f.Checker.output;
        Alcotest.(check int)
          (Filename.basename f.Checker.path ^ ": code unchanged")
          c.Checker.code f.Checker.code
      end)
    clean faulted

(* --- Suite -------------------------------------------------------------------- *)

let () =
  Alcotest.run "fault"
    [
      ( "malformed sources",
        [
          Alcotest.test_case "corpus never raises" `Quick test_corpus_never_raises;
          Alcotest.test_case "brokenness reported" `Quick test_corpus_brokenness_is_reported;
          Alcotest.test_case "partial file keeps good class" `Quick
            test_partial_file_keeps_good_class;
          Alcotest.test_case "broken member keeps methods" `Quick
            test_broken_member_keeps_other_methods;
        ] );
      ( "adversarial automata",
        [
          Alcotest.test_case "determinize blowup hits budget" `Quick
            test_determinize_blowup_hits_budget;
          Alcotest.test_case "small instance fits" `Quick test_determinize_small_instance_fits;
          Alcotest.test_case "foreign symbol diagnosable" `Quick test_determinize_foreign_symbol;
          Alcotest.test_case "language product hits budget" `Quick
            test_language_product_hits_budget;
          prop_determinize_total;
        ] );
      ( "graceful degradation",
        [
          Alcotest.test_case "starved pipeline degrades" `Quick test_starved_pipeline_degrades;
          Alcotest.test_case "generous budget verifies" `Quick
            test_generous_budget_verifies_sector;
          Alcotest.test_case "other checks still run" `Quick
            test_starved_pipeline_runs_other_checks;
          prop_pipeline_total_on_garbage;
          prop_pipeline_total_on_mutations;
        ] );
      ( "supervisor faults",
        [
          Alcotest.test_case "garbage frame condemns one task" `Quick
            test_garbage_frame_condemns_one_task;
          Alcotest.test_case "wedged worker detected and replaced" `Quick
            test_wedged_worker_detected_and_replaced;
          Alcotest.test_case "fork failure degrades to inline" `Quick
            test_fork_failure_degrades_to_inline;
          Alcotest.test_case "crash leaves other units byte-identical" `Quick
            test_worker_crash_leaves_other_units_byte_identical;
        ] );
      ( "cache corruption",
        [
          Alcotest.test_case "truncated entry is a miss" `Quick test_truncated_entry_is_miss;
          Alcotest.test_case "wrong version is evicted" `Quick test_wrong_version_is_evicted;
          Alcotest.test_case "undecodable blob is a miss" `Quick
            test_undecodable_blob_is_miss;
          Alcotest.test_case "open_dir on a file degrades" `Quick
            test_open_dir_on_regular_file_degrades;
          Alcotest.test_case "read-only store is counted" `Quick
            test_read_only_dir_store_is_counted;
        ] );
    ]
