(* Shared generators and helpers for the test executables. *)

let sym name = Symbol.intern name
let tr names = Trace.of_names names

(* --- QCheck generator for regexes ---------------------------------------- *)

let regex_gen_over alphabet : Regex.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        return Regex.empty;
        return Regex.eps;
        map Regex.sym (oneofl alphabet);
      ]
  in
  let rec tree n =
    if n <= 1 then leaf
    else
      oneof
        [
          leaf;
          map2 Regex.seq (tree (n / 2)) (tree (n / 2));
          map2 Regex.alt (tree (n / 2)) (tree (n / 2));
          map Regex.star (tree (n - 1));
        ]
  in
  (* Cap the size: language-level checks are exponential in expression size,
     and small expressions already cover every constructor interaction. *)
  int_range 1 16 >>= tree

let default_regex_gen = regex_gen_over Prog_gen.default_alphabet

let regex_print r = Regex.to_string r

let rec regex_shrink (r : Regex.t) : Regex.t Seq.t =
  match r with
  | Empty -> Seq.empty
  | Eps | Sym _ -> Seq.return Regex.empty
  | Seq (a, b) | Alt (a, b) ->
    Seq.append (Seq.cons a (Seq.cons b Seq.empty))
      (Seq.append
         (Seq.map (fun a' -> Regex.seq a' b) (regex_shrink a))
         (Seq.map (fun b' -> Regex.seq a b') (regex_shrink b)))
  | Star a -> Seq.cons a (Seq.map Regex.star (regex_shrink a))

(* --- QCheck generator for IR programs ------------------------------------- *)

let prog_gen_over alphabet : Prog.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map Prog.call (oneofl alphabet);
        return Prog.skip;
        return Prog.return;
      ]
  in
  let rec tree n =
    if n <= 1 then leaf
    else
      oneof
        [
          leaf;
          map2 Prog.seq (tree (n / 2)) (tree (n / 2));
          map2 Prog.if_ (tree (n / 2)) (tree (n / 2));
          map Prog.loop (tree (n - 1));
        ]
  in
  int_range 1 20 >>= tree

let default_prog_gen = prog_gen_over Prog_gen.default_alphabet
let prog_print p = Prog.to_string p
let prog_shrink p = List.to_seq (Prog_gen.shrink p)

(* --- Shrinking arbitraries -------------------------------------------------- *)

(* The one bridge between the QCheck2 generators above and QCheck1
   arbitraries: qcheck1 is the API that takes an *explicit* shrinker, which
   is what lets every suite reuse [regex_shrink] / [Prog_gen.shrink] instead
   of growing its own. [QCheck.pair]/[triple] compose shrinkers (and
   printers), so counterexamples over tuples shrink component-wise for
   free. *)
let arbitrary ?print ~shrink gen2 =
  QCheck.make ?print
    ~shrink:(fun x yield -> Seq.iter yield (shrink x))
    (fun st -> QCheck2.Gen.generate1 ~rand:st gen2)

let regex_arb_over alphabet =
  arbitrary ~print:regex_print ~shrink:regex_shrink (regex_gen_over alphabet)

let regex_arb = regex_arb_over Prog_gen.default_alphabet

let prog_arb_over alphabet =
  arbitrary ~print:prog_print ~shrink:prog_shrink (prog_gen_over alphabet)

let prog_arb = prog_arb_over Prog_gen.default_alphabet

(* --- Alcotest helpers ------------------------------------------------------ *)

let trace_set = Alcotest.testable Trace.pp_set Trace.Set.equal
let trace = Alcotest.testable Trace.pp Trace.equal
let regex = Alcotest.testable Regex.pp Regex.equal

let qtest ?(count = 200) name gen ~print prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name ~print gen prop)

(* Like {!qtest} but over a shrinking arbitrary ({!regex_arb}, {!prog_arb},
   or a [QCheck.pair]/[triple] of them), so a failing case is reported
   minimal. *)
let qtest_arb ?(count = 200) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Restrict trace-set to words over an alphabet bound — used when comparing
   enumerations computed over different alphabets. *)
let words_of_nfa_upto = Nfa.words_upto

(* Substring check for report-message assertions. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0
