(* Tests for the tooling layer added on top of the paper's core: the IR and
   regex parsers, random trace sampling, the runtime monitor, behavioral
   refinement, and the LTLf pattern library. *)

open Testutil

(* --- IR parser ---------------------------------------------------------------- *)

let prog = Alcotest.testable Prog.pp Prog.equal

let test_prog_parse_paper () =
  Alcotest.check prog "paper loop" Ir_examples.paper_loop
    (Prog_parser.parse "loop(*){a(); if(*){b(); return} else {c()}}")

let test_prog_parse_unicode_star () =
  Alcotest.check prog "unicode condition" Ir_examples.paper_loop
    (Prog_parser.parse "loop(\xe2\x98\x85){a(); if(\xe2\x98\x85){b(); return} else {c()}}")

let test_prog_parse_pp_roundtrip () =
  List.iter
    (fun (name, p) ->
      Alcotest.check prog
        (Printf.sprintf "roundtrip %s" name)
        p
        (Prog_parser.parse (Prog.to_string p)))
    Ir_examples.corpus

let test_prog_parse_variants () =
  Alcotest.check prog "empty condition" (Prog.loop (Prog.call_name "a"))
    (Prog_parser.parse "loop(){a()}");
  Alcotest.check prog "missing else"
    (Prog.if_ (Prog.call_name "a") Prog.skip)
    (Prog_parser.parse "if(*){a()}");
  Alcotest.check prog "trailing semicolon"
    (Prog.seq (Prog.call_name "a") (Prog.call_name "b"))
    (Prog_parser.parse "a(); b();");
  Alcotest.check prog "dotted event" (Prog.call_name "a.open") (Prog_parser.parse "a.open()")

let test_prog_parse_errors () =
  List.iter
    (fun bad ->
      match Prog_parser.parse_result bad with
      | Ok _ -> Alcotest.failf "expected failure on %S" bad
      | Error _ -> ())
    [ ""; "a("; "a()b()"; "if(*){a()} else"; "loop{a()}"; "a(); ; b()"; "return()" ]

let prop_prog_parse_roundtrip =
  qtest "IR print/parse round-trip" ~count:200 default_prog_gen ~print:prog_print (fun p ->
      Prog.equal p (Prog_parser.parse (Prog.to_string p)))

(* --- Regex parser --------------------------------------------------------------- *)

let test_regex_parse_basic () =
  Alcotest.check regex "union and star"
    (Regex.star (Regex.alt (Regex.sym_of_name "a") (Regex.sym_of_name "b")))
    (Regex_parser.parse "(a + b)*");
  Alcotest.check regex "juxtaposition"
    (Regex.seq (Regex.sym_of_name "a") (Regex.sym_of_name "b"))
    (Regex_parser.parse "a b");
  Alcotest.check regex "constants"
    (Regex.alt Regex.eps Regex.empty |> fun r -> r)
    (Regex_parser.parse "1 + 0");
  Alcotest.check regex "dotted events"
    (Regex.seq (Regex.sym_of_name "a.test") (Regex.sym_of_name "a.open"))
    (Regex_parser.parse "a.test a.open")

let test_regex_parse_pp_roundtrip () =
  List.iter
    (fun (_, p) ->
      let r = Infer.infer p in
      Alcotest.check regex
        (Printf.sprintf "roundtrip %s" (Regex.to_string r))
        r
        (Regex_parser.parse (Regex.to_string r)))
    Ir_examples.corpus

let prop_regex_parse_roundtrip =
  qtest "regex print/parse round-trip" ~count:200 default_regex_gen ~print:regex_print
    (fun r -> Regex.equal r (Regex_parser.parse (Regex.to_string r)))

let test_regex_parse_errors () =
  List.iter
    (fun bad ->
      match Regex_parser.parse_result bad with
      | Ok _ -> Alcotest.failf "expected failure on %S" bad
      | Error _ -> ())
    [ ""; "("; "a +"; "* a"; "a)"; "+" ]

(* --- Sampling -------------------------------------------------------------------- *)

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let valve =
  (Extract.extract_class (Mpy_parser.parse_class valve_source)).Extract.model

let test_sample_always_accepted () =
  let nfa = Depgraph.usage_nfa valve in
  let state = Random.State.make [| 11 |] in
  let samples = Sample.many ~state ~target_len:10 ~count:50 nfa in
  Alcotest.(check int) "fifty samples" 50 (List.length samples);
  List.iter
    (fun trace ->
      if not (Nfa.accepts nfa trace) then
        Alcotest.failf "sampled trace rejected: %s" (Trace.to_string trace))
    samples

let test_sample_empty_language () =
  let nfa = Nfa.empty_language in
  Alcotest.(check (option trace)) "no sample" None (Sample.from_nfa nfa)

let test_sample_reaches_target_length () =
  let nfa = Depgraph.usage_nfa valve in
  let state = Random.State.make [| 3 |] in
  let samples = Sample.many ~state ~target_len:12 ~count:50 nfa in
  Alcotest.(check bool) "some sample is long" true
    (List.exists (fun t -> List.length t >= 6) samples)

let test_sample_single_word_language () =
  let nfa = Thompson.of_regex (Regex.word (tr [ "x"; "y" ])) in
  let state = Random.State.make [| 1 |] in
  (match Sample.from_nfa ~state nfa with
  | Some w -> Alcotest.check trace "only word" (tr [ "x"; "y" ]) w
  | None -> Alcotest.fail "expected a sample")

(* --- Monitor ---------------------------------------------------------------------- *)

let test_monitor_accepts_valid () =
  Alcotest.(check (result unit string)) "full cycle" (Ok ())
    (Monitor.run valve [ "test"; "open"; "close" ]);
  Alcotest.(check (result unit string)) "empty usage" (Ok ()) (Monitor.run valve [])

let test_monitor_rejects_bad_op () =
  match Monitor.run valve [ "test"; "close" ] with
  | Ok () -> Alcotest.fail "expected rejection"
  | Error msg -> Alcotest.(check bool) "mentions close" true (contains msg "'close'")

let test_monitor_rejects_incomplete () =
  match Monitor.run valve [ "test"; "open" ] with
  | Ok () -> Alcotest.fail "expected incomplete"
  | Error msg -> Alcotest.(check bool) "mentions incomplete" true (contains msg "incomplete")

let test_monitor_allowed_evolves () =
  let m0 = Monitor.start valve in
  Alcotest.(check (list string)) "initial" [ "test" ] (Monitor.allowed m0);
  match Monitor.step m0 "test" with
  | Monitor.Reject _ -> Alcotest.fail "test must be allowed"
  | Monitor.Continue m1 ->
    Alcotest.(check (list string)) "after test" [ "clean"; "open" ] (Monitor.allowed m1);
    Alcotest.(check bool) "cannot stop mid-protocol" false (Monitor.may_stop m1);
    Alcotest.(check (list string)) "observed" [ "test" ] (Monitor.observed m1)

let test_monitor_immutable () =
  let m0 = Monitor.start valve in
  (match Monitor.step m0 "test" with
  | Monitor.Continue _ -> ()
  | Monitor.Reject _ -> Alcotest.fail "allowed");
  (* The original monitor is unchanged. *)
  Alcotest.(check (list string)) "m0 untouched" [ "test" ] (Monitor.allowed m0)

let test_monitor_agrees_with_nfa () =
  (* The monitor and the usage automaton must agree on every sampled trace
     and on every trace with one random operation appended. *)
  let nfa = Depgraph.usage_nfa valve in
  let state = Random.State.make [| 5 |] in
  let samples = Sample.many ~state ~target_len:6 ~count:30 nfa in
  List.iter
    (fun trace ->
      let names = Trace.to_names trace in
      Alcotest.(check bool)
        (Printf.sprintf "monitor accepts %s" (Trace.to_string trace))
        true
        (Monitor.run valve names = Ok ()))
    samples

(* --- Refinement ------------------------------------------------------------------- *)

let strict_valve_source =
  (* Like Valve, but without the clean operation: a smaller protocol. *)
  {|
@sys
class StrictValve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        return ["open"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]
|}

let strict_valve =
  (Extract.extract_class (Mpy_parser.parse_class strict_valve_source)).Extract.model

let test_refines_direction () =
  (* StrictValve's usages are a subset of Valve's... except op names must
     match: both use test/open/close, Valve additionally allows clean. *)
  Alcotest.(check bool) "strict refines permissive" true
    (Result.is_ok (Refine.refines ~impl:strict_valve ~spec:valve ()));
  match Refine.refines ~impl:valve ~spec:strict_valve () with
  | Ok () -> Alcotest.fail "permissive cannot refine strict"
  | Error w ->
    Alcotest.check trace "witness uses clean" (tr [ "test"; "clean" ]) w

let test_substitutable_direction () =
  Alcotest.(check bool) "valve substitutable for strict" true
    (Result.is_ok (Refine.substitutable ~sub:valve ~super:strict_valve ()));
  Alcotest.(check bool) "strict not substitutable for valve" false
    (Result.is_ok (Refine.substitutable ~sub:strict_valve ~super:valve ()))

let test_equivalent_protocols () =
  Alcotest.(check bool) "self equivalence" true (Refine.equivalent_protocols valve valve);
  Alcotest.(check bool) "different protocols" false
    (Refine.equivalent_protocols valve strict_valve)

let test_inheritance_checked_in_pipeline () =
  (* A subclass that *restricts* the parent protocol is flagged. *)
  let source =
    valve_source
    ^ {|
@sys
class TimidValve(Valve):
    @op_initial
    def test(self):
        return ["clean"]

    @op_final
    def clean(self):
        return ["test"]
|}
  in
  let result = Pipeline.verify_source_exn source in
  Alcotest.(check bool) "substitutability error" true
    (List.exists
       (fun r ->
         match r with
         | Report.Structural { message; severity = Report.Error; _ } ->
           contains message "not substitutable"
         | _ -> false)
       result.Pipeline.reports)

let test_inheritance_ok_when_superset () =
  (* A subclass that keeps the parent protocol (same ops and returns) passes. *)
  let source =
    valve_source
    ^ {|
@sys
class LoggedValve(Valve):
    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        return ["close"]

    @op_final
    def close(self):
        return ["test"]

    @op_final
    def clean(self):
        return ["test"]
|}
  in
  let result = Pipeline.verify_source_exn source in
  Alcotest.(check bool) "no substitutability error" false
    (List.exists
       (fun r ->
         match r with
         | Report.Structural { message; _ } -> contains message "not substitutable"
         | _ -> false)
       result.Pipeline.reports)

(* --- Patterns --------------------------------------------------------------------- *)

let formula = Alcotest.testable Ltlf.pp Ltlf.equal
let a = sym "a.open"
let b = sym "b.open"
let c = sym "a.close"

let test_pattern_expansions () =
  Alcotest.check formula "absence" (Ltl_parser.parse "G !a.open") (Patterns.absence a);
  Alcotest.check formula "existence" (Ltl_parser.parse "F a.open") (Patterns.existence a);
  Alcotest.check formula "universality" (Ltl_parser.parse "G a.open")
    (Patterns.universality a);
  Alcotest.check formula "response" (Ltl_parser.parse "G (a.open -> F a.close)")
    (Patterns.response ~cause:a ~effect:c);
  Alcotest.check formula "precedence (the paper's claim)"
    (Ltl_parser.parse "(!a.open) W b.open")
    (Patterns.precedence ~first:b ~before:a)

let test_pattern_semantics () =
  let resp = Patterns.response ~cause:a ~effect:c in
  Alcotest.(check bool) "response holds" true
    (Ltlf.holds resp (tr [ "a.open"; "x"; "a.close" ]));
  Alcotest.(check bool) "response fails" false (Ltlf.holds resp (tr [ "a.open"; "x" ]));
  let never_open = Patterns.absence_after ~trigger:(sym "halt") ~banned:a in
  Alcotest.(check bool) "absence_after holds" true
    (Ltlf.holds never_open (tr [ "a.open"; "halt"; "x" ]));
  Alcotest.(check bool) "absence_after fails" false
    (Ltlf.holds never_open (tr [ "halt"; "a.open" ]));
  Alcotest.(check bool) "absence_after allows trigger position" true
    (Ltlf.holds never_open (tr [ "halt" ]))

let test_pattern_existence_between () =
  let f = Patterns.existence_between ~open_:a ~close:c in
  Alcotest.(check bool) "closed later" true (Ltlf.holds f (tr [ "a.open"; "a.close" ]));
  Alcotest.(check bool) "left open" false (Ltlf.holds f (tr [ "x"; "a.open" ]));
  Alcotest.(check bool) "vacuous" true (Ltlf.holds f (tr [ "x" ]))

let test_pattern_never_adjacent () =
  let f = Patterns.never_adjacent a in
  Alcotest.(check bool) "spaced" true (Ltlf.holds f (tr [ "a.open"; "x"; "a.open" ]));
  Alcotest.(check bool) "adjacent" false (Ltlf.holds f (tr [ "a.open"; "a.open" ]));
  Alcotest.(check bool) "at end" true (Ltlf.holds f (tr [ "x"; "a.open" ]))

let test_pattern_checkable () =
  (* The paper claim as a pattern, checked against an automaton. *)
  let impl = Thompson.of_regex (Regex_parser.parse "a.test a.open") in
  match Ltl_check.check ~impl (Patterns.precedence ~first:b ~before:a) with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error v -> Alcotest.check trace "witness" (tr [ "a.test"; "a.open" ]) v.Ltl_check.counterexample

let test_patterns_all_registry () =
  Alcotest.(check int) "four binary patterns" 4 (List.length Patterns.all);
  List.iter
    (fun (name, make) ->
      let f = make a b in
      Alcotest.(check bool) (name ^ " builds") true (Ltlf.size f > 1))
    Patterns.all

let () =
  Alcotest.run "tools"
    [
      ( "prog-parser",
        [
          Alcotest.test_case "paper loop" `Quick test_prog_parse_paper;
          Alcotest.test_case "unicode star" `Quick test_prog_parse_unicode_star;
          Alcotest.test_case "corpus round-trip" `Quick test_prog_parse_pp_roundtrip;
          Alcotest.test_case "variants" `Quick test_prog_parse_variants;
          Alcotest.test_case "errors" `Quick test_prog_parse_errors;
          prop_prog_parse_roundtrip;
        ] );
      ( "regex-parser",
        [
          Alcotest.test_case "basic" `Quick test_regex_parse_basic;
          Alcotest.test_case "corpus round-trip" `Quick test_regex_parse_pp_roundtrip;
          Alcotest.test_case "errors" `Quick test_regex_parse_errors;
          prop_regex_parse_roundtrip;
        ] );
      ( "sample",
        [
          Alcotest.test_case "always accepted" `Quick test_sample_always_accepted;
          Alcotest.test_case "empty language" `Quick test_sample_empty_language;
          Alcotest.test_case "reaches target length" `Quick test_sample_reaches_target_length;
          Alcotest.test_case "single-word language" `Quick test_sample_single_word_language;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "accepts valid" `Quick test_monitor_accepts_valid;
          Alcotest.test_case "rejects bad op" `Quick test_monitor_rejects_bad_op;
          Alcotest.test_case "rejects incomplete" `Quick test_monitor_rejects_incomplete;
          Alcotest.test_case "allowed evolves" `Quick test_monitor_allowed_evolves;
          Alcotest.test_case "immutable" `Quick test_monitor_immutable;
          Alcotest.test_case "agrees with NFA" `Quick test_monitor_agrees_with_nfa;
        ] );
      ( "refine",
        [
          Alcotest.test_case "refines direction" `Quick test_refines_direction;
          Alcotest.test_case "substitutable direction" `Quick test_substitutable_direction;
          Alcotest.test_case "equivalent protocols" `Quick test_equivalent_protocols;
          Alcotest.test_case "inheritance flagged" `Quick test_inheritance_checked_in_pipeline;
          Alcotest.test_case "inheritance ok" `Quick test_inheritance_ok_when_superset;
        ] );
      ( "patterns",
        [
          Alcotest.test_case "expansions" `Quick test_pattern_expansions;
          Alcotest.test_case "semantics" `Quick test_pattern_semantics;
          Alcotest.test_case "existence between" `Quick test_pattern_existence_between;
          Alcotest.test_case "never adjacent" `Quick test_pattern_never_adjacent;
          Alcotest.test_case "checkable" `Quick test_pattern_checkable;
          Alcotest.test_case "registry" `Quick test_patterns_all_registry;
        ] );
    ]
