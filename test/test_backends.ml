open Testutil

let valve_source =
  {|
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
|}

let bad_sector_source =
  {|
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                self.a.close()
                return []
|}

let extract source =
  (Extract.extract_class (Mpy_parser.parse_class source)).Extract.model

let valve = extract valve_source
let bad_sector = extract bad_sector_source

(* --- DOT ------------------------------------------------------------------------ *)

let test_dot_escape () =
  Alcotest.(check string) "quotes" "a\\\"b" (Dot.escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Dot.escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Dot.escape "a\nb");
  Alcotest.(check string) "plain" "open_a" (Dot.escape "open_a")

let test_dot_of_model_valve () =
  let dot = Dot.of_model valve in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph Valve {");
  (* 4 ops with 1+1+1+2 exits = 5 exit states + start = 6 nodes. *)
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (contains dot fragment))
    [
      "label=\"start\"";
      "label=\"test/0\"";
      "label=\"test/1\"";
      "label=\"open/0\"";
      "label=\"close/0\"";
      "label=\"clean/0\"";
      "[label=\"test\"]";
      "[label=\"open\"]";
      "doublecircle";
    ]

let test_dot_final_states_doubled () =
  let dot = Dot.of_model valve in
  (* close and clean exits are accepting. *)
  Alcotest.(check bool) "close doubled" true
    (contains dot "[label=\"close/0\", shape=doublecircle]");
  Alcotest.(check bool) "open not doubled" true
    (contains dot "[label=\"open/0\", shape=circle]")

let test_dot_of_depgraph () =
  let dot = Dot.of_depgraph bad_sector in
  Alcotest.(check bool) "entry box" true (contains dot "entry_open_a [label=\"open_a\", shape=box]");
  Alcotest.(check bool) "exit with return list" true
    (contains dot "return [open_b]");
  Alcotest.(check bool) "arc entry to exit" true
    (contains dot "entry_open_a -> exit_open_a_0");
  Alcotest.(check bool) "arc exit to next entry" true
    (contains dot "exit_open_a_0 -> entry_open_b")

let test_dot_of_nfa_roundtrippable () =
  (* The DOT for an arbitrary automaton contains every transition. *)
  let nfa = Thompson.of_regex (Infer.infer Ir_examples.paper_loop) in
  let dot = Dot.of_nfa nfa in
  let transition_lines =
    String.split_on_char '\n' dot
    |> List.filter (fun l -> contains l " -> " && contains l "label=")
  in
  Alcotest.(check bool) "every labeled transition present" true
    (List.length transition_lines
     >= List.length (Nfa.transitions nfa))

(* --- NuSMV ----------------------------------------------------------------------- *)

let test_sanitize () =
  Alcotest.(check string) "dots" "a__open" (Nusmv.sanitize "a.open");
  Alcotest.(check string) "plain" "open_a" (Nusmv.sanitize "open_a");
  Alcotest.(check string) "weird" "x_y" (Nusmv.sanitize "x%y")

(* The sanitize contract the external driver relies on: always a legal NuSMV
   identifier, even for keyword-colliding or digit-leading operation names. *)
let test_sanitize_hardened () =
  Alcotest.(check string) "keyword case" "_case" (Nusmv.sanitize "case");
  Alcotest.(check string) "keyword next" "_next" (Nusmv.sanitize "next");
  Alcotest.(check string) "keyword MODULE" "_MODULE" (Nusmv.sanitize "MODULE");
  Alcotest.(check string) "keyword G (LTL operator)" "_G" (Nusmv.sanitize "G");
  Alcotest.(check string) "keyword self" "_self" (Nusmv.sanitize "self");
  Alcotest.(check string) "digit-leading" "_7seg" (Nusmv.sanitize "7seg");
  Alcotest.(check string) "empty" "_" (Nusmv.sanitize "");
  (* A dotted name whose pieces collide only as a whole is untouched. *)
  Alcotest.(check string) "dotted keyword pieces" "a__init" (Nusmv.sanitize "a.init");
  (* Case-sensitivity: NuSMV keywords are matched exactly. *)
  Alcotest.(check string) "Case differs from case" "Case" (Nusmv.sanitize "Case")

let test_module_of_dfa_shape () =
  let dfa =
    Determinize.determinize (Thompson.of_regex (Regex.word (Trace.of_names [ "a.x"; "a.y" ])))
  in
  let smv = Nusmv.module_of_dfa ~name:"two_step" dfa in
  List.iter
    (fun fragment -> Alcotest.(check bool) fragment true (contains smv fragment))
    [
      "MODULE main";
      "event : {";
      "e_a__x";
      "e_a__y";
      "e_end";
      "init(state) :=";
      "next(state) := case";
      "TRANS event = e_end -> next(event) = e_end";
      "accept :=";
      "LTLSPEC G (event = e_end -> accept)";
    ]

let test_module_of_class_includes_claims () =
  let smv = Nusmv.model_of_class bad_sector in
  Alcotest.(check bool) "claim comment" true (contains smv "-- claim: (!a.open) W b.open");
  Alcotest.(check bool) "ltlspec present" true (contains smv "LTLSPEC ((");
  Alcotest.(check bool) "alive guard" true (contains smv "alive")

let test_ltlspec_embedding () =
  let f = Ltl_parser.parse "(!a.open) W b.open" in
  let spec = Nusmv.ltlspec_of_claim f in
  Alcotest.(check bool) "uses event atoms" true (contains spec "event = e_b__open");
  Alcotest.(check bool) "weak until expansion has G" true (contains spec "G (alive ->")

let test_ltlspec_next_strong_weak () =
  Alcotest.(check string) "strong next" "LTLSPEC X (alive & event = e_a)"
    (Nusmv.ltlspec_of_claim (Ltl_parser.parse "X a"));
  Alcotest.(check string) "weak next" "LTLSPEC X (!alive | event = e_a)"
    (Nusmv.ltlspec_of_claim (Ltl_parser.parse "WX a"))

let test_nusmv_deterministic_output () =
  (* Emission is a pure function of the model. *)
  let smv1 = Nusmv.model_of_class bad_sector in
  let smv2 = Nusmv.model_of_class bad_sector in
  Alcotest.(check string) "stable" smv1 smv2

(* --- NuSMV goldens: the full emitted text is the driver's input contract -- *)

let test_module_of_dfa_golden () =
  (* a.x then a.y, nothing else: 4 states after completion (incl. sink). *)
  let dfa =
    Determinize.determinize
      (Thompson.of_regex (Regex.word (Trace.of_names [ "a.x"; "a.y" ])))
  in
  let expected =
    "-- NuSMV model of two_step (generated by shelley-ocaml)\n\
     -- Finite traces are embedded as infinite ones: the first e_end marks the\n\
     -- end of the word and the event input is frozen afterwards.\n\
     MODULE main\n\
     VAR\n\
    \  event : {e_a__x, e_a__y, e_end};\n\
    \  state : {s0, s1, s2, s3};\n\
     ASSIGN\n\
    \  init(state) := s0;\n\
    \  next(state) := case\n\
    \    event = e_end : state;\n\
    \    state = s0 & event = e_a__x : s1;\n\
    \    state = s0 & event = e_a__y : s2;\n\
    \    state = s1 & event = e_a__x : s2;\n\
    \    state = s1 & event = e_a__y : s3;\n\
    \    state = s2 & event = e_a__x : s2;\n\
    \    state = s2 & event = e_a__y : s2;\n\
    \    state = s3 & event = e_a__x : s2;\n\
    \    state = s3 & event = e_a__y : s2;\n\
    \    TRUE : state;\n\
    \  esac;\n\
     TRANS event = e_end -> next(event) = e_end\n\
     DEFINE\n\
    \  alive := event != e_end;\n\
    \  accept := state = s3;\n\
     \n\
     -- The run so far is an accepted word exactly when the word has ended\n\
     -- and the automaton sits in an accepting state:\n\
     LTLSPEC G (event = e_end -> accept)\n"
  in
  Alcotest.(check string) "full module text"
    expected
    (Nusmv.module_of_dfa ~name:"two_step" dfa)

let test_module_of_dfa_no_universality_spec () =
  let dfa =
    Determinize.determinize
      (Thompson.of_regex (Regex.word (Trace.of_names [ "a.x"; "a.y" ])))
  in
  let smv = Nusmv.module_of_dfa ~universality_spec:false ~name:"two_step" dfa in
  Alcotest.(check bool) "no descriptive spec" false (contains smv "LTLSPEC");
  Alcotest.(check bool) "still defines accept" true (contains smv "accept :=")

let test_ltlspec_goldens () =
  let golden claim expected =
    Alcotest.(check string) claim expected (Nusmv.ltlspec_of_claim (Ltl_parser.parse claim))
  in
  golden "G a" "LTLSPEC (G (alive -> event = e_a))";
  golden "F a" "LTLSPEC (F (alive & event = e_a))";
  golden "a U b"
    "LTLSPEC ((alive & event = e_a) U (alive & event = e_b))";
  golden "(!a.open) W b.open"
    "LTLSPEC (((alive & !(event = e_a__open)) U (alive & event = e_b__open)) | (G \
     (alive -> !(event = e_a__open))))"

let test_ltlspec_checked_golden () =
  Alcotest.(check string) "guarded embedding"
    "LTLSPEC ((F event = e_end) & (G (event = e_end -> accept))) -> (G (alive -> \
     event = e_a))"
    (Nusmv.ltlspec_of_claim_checked (Ltl_parser.parse "G a"))

let test_model_of_class_claims_guarded () =
  let smv = Nusmv.model_of_class bad_sector in
  (* Claims are checked over valid usage words only, and the universality
     spec is absent, so an external NuSMV verdict means what the native
     checker means. *)
  Alcotest.(check bool) "guard present" true
    (contains smv "((F event = e_end) & (G (event = e_end -> accept))) ->");
  Alcotest.(check bool) "universality spec absent" false
    (contains smv "LTLSPEC G (event = e_end -> accept)")

let () =
  Alcotest.run "backends"
    [
      ( "dot",
        [
          Alcotest.test_case "escape" `Quick test_dot_escape;
          Alcotest.test_case "valve model" `Quick test_dot_of_model_valve;
          Alcotest.test_case "final states doubled" `Quick test_dot_final_states_doubled;
          Alcotest.test_case "dependency graph" `Quick test_dot_of_depgraph;
          Alcotest.test_case "nfa transitions" `Quick test_dot_of_nfa_roundtrippable;
        ] );
      ( "nusmv",
        [
          Alcotest.test_case "sanitize" `Quick test_sanitize;
          Alcotest.test_case "sanitize hardened" `Quick test_sanitize_hardened;
          Alcotest.test_case "module shape" `Quick test_module_of_dfa_shape;
          Alcotest.test_case "class with claims" `Quick test_module_of_class_includes_claims;
          Alcotest.test_case "ltlspec embedding" `Quick test_ltlspec_embedding;
          Alcotest.test_case "strong vs weak next" `Quick test_ltlspec_next_strong_weak;
          Alcotest.test_case "deterministic output" `Quick test_nusmv_deterministic_output;
          Alcotest.test_case "module golden" `Quick test_module_of_dfa_golden;
          Alcotest.test_case "module without universality spec" `Quick
            test_module_of_dfa_no_universality_spec;
          Alcotest.test_case "ltlspec goldens" `Quick test_ltlspec_goldens;
          Alcotest.test_case "checked ltlspec golden" `Quick test_ltlspec_checked_golden;
          Alcotest.test_case "class claims guarded" `Quick
            test_model_of_class_claims_guarded;
        ] );
    ]
