Result-cache golden tests. A cold run populates the cache and a warm rerun
is byte-identical — the cache must never change what the user sees, only
how fast they see it:

  $ shelley check --cache .c valve.py bad_sector.py > cold.out 2>&1; echo "exit $?"
  exit 1
  $ shelley check --cache .c valve.py bad_sector.py > warm.out 2>&1; echo "exit $?"
  exit 1
  $ cmp cold.out warm.out && echo identical
  identical

The warm run's metrics prove it was served from the cache, and a parallel
warm run still matches byte for byte:

  $ shelley check --cache .c --metrics-out m.json valve.py bad_sector.py > /dev/null 2>&1; echo "exit $?"
  exit 1
  $ grep -o '"cache.hits": 2' m.json
  "cache.hits": 2
  $ shelley check --cache .c -j 4 valve.py bad_sector.py > warm4.out 2>&1; cmp cold.out warm4.out && echo identical
  identical

The stable cache counters join the --stats table (fake clock keeps the
timings printable):

  $ SHELLEY_OBS_FAKE_CLOCK=1 shelley check --cache .c --stats valve.py bad_sector.py > /dev/null 2>stats.txt; echo "exit $?"
  exit 1
  $ grep 'cache\.' stats.txt
    cache.bytes_read                                      328
    cache.hits                                              2

'cache stats' classifies every file in the directory:

  $ shelley cache stats .c --json | grep -E 'live_entries|stale_entries|corrupt_entries|tmp_files'
    "live_entries": 2,
    "stale_entries": 0,
    "corrupt_entries": 0,
    "tmp_files": 0

Changing a deterministic budget composes different keys — the old verdicts
must not be replayed for a question they never answered:

  $ shelley check --cache .c --fuel 12345 --metrics-out fuel.json valve.py bad_sector.py > /dev/null 2>&1
  [1]
  $ grep -o '"cache.misses": 2' fuel.json
  "cache.misses": 2
  $ shelley check --cache .c --max-states 777 --metrics-out states.json valve.py bad_sector.py > /dev/null 2>&1
  [1]
  $ grep -o '"cache.misses": 2' states.json
  "cache.misses": 2

So does changing the lint rule configuration:

  $ shelley lint --cache .c --metrics-out l1.json valve.py > /dev/null 2>&1
  $ grep -o '"cache.misses": 1' l1.json
  "cache.misses": 1
  $ shelley lint --cache .c --metrics-out l2.json valve.py > /dev/null 2>&1
  $ grep -o '"cache.hits": 1' l2.json
  "cache.hits": 1
  $ shelley lint --cache .c --max-behavior-size 3 --metrics-out l3.json valve.py > /dev/null 2>&1
  $ grep -o '"cache.misses": 1' l3.json
  "cache.misses": 1

'cache gc' sweeps what a lookup would refuse — a stale-version entry and an
abandoned temp file — and keeps the live entries:

  $ mkdir -p .c/zz
  $ printf 'shelley-cache 999\nchecksum\npayload' > .c/zz/0000000000000000000000000000zz00.entry
  $ touch .c/zz/.tmp-interrupted-writer
  $ shelley cache gc .c | sed 's/kept [0-9]*/kept N/'
  removed 1 stale, 0 corrupt, 1 temp; kept N live

A corrupted entry is recomputed, and the recomputed output is byte-identical
to the original cold run:

  $ for f in .c/*/*.entry; do printf 'garbage' > "$f"; done
  $ shelley check --cache .c --metrics-out corrupt.json valve.py bad_sector.py > recomputed.out 2>&1; echo "exit $?"
  exit 1
  $ grep -o '"cache.corrupt_entries": 2' corrupt.json
  "cache.corrupt_entries": 2
  $ cmp cold.out recomputed.out && echo identical
  identical

'cache clear' empties the directory without removing it:

  $ shelley cache clear .c | sed 's/[0-9]* files/N files/'
  removed N files
  $ shelley cache stats .c --json | grep live_entries
    "live_entries": 0,

Maintenance on a directory that does not exist is an error, not a silent
empty cache:

  $ shelley cache stats .nosuch
  error: no cache directory at .nosuch
  [2]

A cache path that cannot be a directory degrades to an uncached run with a
warning — never a failure:

  $ touch notadir
  $ shelley check --cache notadir valve.py 2>warn.txt; echo "exit $?"
  OK: specification verified
  exit 0
  $ cat warn.txt
  warning: cannot open cache directory notadir; continuing without a result cache
